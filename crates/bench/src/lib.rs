//! Shared harness for the experiment binary and benches: runs every slicing
//! algorithm over every corpus program and collects the measurements the
//! paper's Figs. 17–22 report. All polyvariant slicing goes through one
//! [`Slicer`] session per program, so the SDG→PDS encoding is paid once per
//! program, not once per criterion.

pub mod alloc_count;
pub mod timer;

use specslice::encode::MAIN_CONTROL;
use specslice::{criteria, Criterion, PipelineStats, Slicer, SpecSlice};
use specslice_fsa::mrd::mrd_with_stats;
use specslice_pds::prestar::prestar_with_stats;
use specslice_sdg::VertexId;
use std::time::{Duration, Instant};

/// One sliced criterion with timing and size measurements.
#[derive(Clone, Debug)]
pub struct SliceRecord {
    /// Program name.
    pub program: &'static str,
    /// Criterion vertex set (one printf's actual-ins).
    pub criterion: Vec<VertexId>,
    /// Closure-slice size (vertices).
    pub closure_size: usize,
    /// Monovariant executable slice size.
    pub mono_size: usize,
    /// Monovariant extraneous-element count.
    pub mono_extraneous: usize,
    /// Polyvariant total size (vertices across variants).
    pub poly_size: usize,
    /// Per-procedure variant counts of the polyvariant slice.
    pub variant_counts: Vec<usize>,
    /// Per-variant (original-PDG size, variant size, mono in-proc size).
    pub scatter: Vec<(usize, usize, usize)>,
    /// Wall-clock of the monovariant algorithm.
    pub mono_time: Duration,
    /// Wall-clock of one session query (criterion → slice, cached encoding).
    pub poly_time: Duration,
    /// Wall-clock of the PDS + FSA portion alone (Prestar + MRD).
    pub automata_time: Duration,
    /// Peak bytes of PDS/FSA structures (Fig. 22's column 6 analogue).
    pub automata_bytes: usize,
    /// Retained bytes of the SDG (Fig. 22's CodeSurfer analogue).
    pub sdg_bytes: usize,
    /// States after `determinize` (input to `minimize`).
    pub det_states: usize,
    /// States after minimization.
    pub min_states: usize,
    /// The full pipeline accounting of the session query (`poly_time`,
    /// `det_states`, `min_states` above are projections of it).
    pub stats: PipelineStats,
    /// The slice itself.
    pub slice: SpecSlice,
}

/// Runs all per-printf slices of one program through its session,
/// collecting records.
pub fn slice_program(name: &'static str, slicer: &Slicer) -> Vec<SliceRecord> {
    let sdg = slicer.sdg();
    let mut out = Vec::new();
    let printf_sites: Vec<_> = sdg.printf_call_sites().cloned().collect();
    for site in printf_sites {
        let cv: Vec<VertexId> = site.actual_ins.clone();

        let t0 = Instant::now();
        let mono = specslice_sdg::binkley::monovariant_executable_slice(sdg, &cv);
        let mono_time = t0.elapsed();

        // Polyvariant query against the cached session encoding. Timing
        // comes from the pipeline's own accounting ([`PipelineStats`]), so
        // every driver reports the same measurement.
        let criterion = Criterion::AllContexts(cv.clone());
        let (slice, stats) = slicer.slice_with_stats(&criterion).expect("criterion");
        let poly_time = stats.query_time;

        // Phase-level timing of the automaton stages alone (re-run against
        // the same cached encoding; the paper's Fig. 21 column 6).
        let enc = slicer.encoding();
        let query = criteria::query_automaton(sdg, enc, &criterion).expect("criterion");
        let ta = Instant::now();
        let (a1, _) = prestar_with_stats(&enc.pds, &query).expect("well-formed query");
        let a1_nfa = a1.to_nfa(MAIN_CONTROL);
        let (a1_trim, _) = a1_nfa.trimmed();
        let (a6, _) = mrd_with_stats(&a1_trim);
        let automata_time = ta.elapsed();

        let closure = specslice_sdg::slice::backward_closure_slice(sdg, &cv);
        let mut per_proc = std::collections::BTreeMap::new();
        for meta in slice.metas() {
            *per_proc.entry(meta.proc).or_insert(0usize) += 1;
        }
        let mono_per_proc = {
            let mut m = std::collections::BTreeMap::new();
            for &v in &mono.vertices {
                *m.entry(sdg.vertex(v).proc).or_insert(0usize) += 1;
            }
            m
        };
        let scatter = slice
            .metas()
            .iter()
            .zip(slice.variant_ids())
            .map(|(meta, &id)| {
                (
                    sdg.proc(meta.proc).vertices.len(),
                    slice.store().row_len(id),
                    mono_per_proc.get(&meta.proc).copied().unwrap_or(0),
                )
            })
            .collect();

        out.push(SliceRecord {
            program: name,
            criterion: cv,
            closure_size: closure.len(),
            mono_size: mono.vertices.len(),
            mono_extraneous: mono.extraneous.len(),
            poly_size: slice.total_vertices(),
            variant_counts: per_proc.values().copied().collect(),
            scatter,
            mono_time,
            poly_time,
            automata_time,
            automata_bytes: stats.prestar_peak_bytes + a6.transition_count() * 24,
            sdg_bytes: sdg.approx_bytes(),
            det_states: stats.mrd.determinized_states,
            min_states: stats.mrd.minimized_states,
            stats,
            slice,
        });
    }
    out
}

/// Geometric mean of strictly positive values (the paper's aggregation).
pub fn geometric_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var =
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Lines of code of a MiniC source (non-blank, non-comment).
pub fn loc(source: &str) -> usize {
    source
        .lines()
        .filter(|l| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with("//")
        })
        .count()
}
