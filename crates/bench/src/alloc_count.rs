//! Cfg-gated counting global allocator for deterministic allocation
//! accounting.
//!
//! With the `count-alloc` cargo feature enabled, this module installs
//! [`CountingAlloc`] — a thin wrapper over the system allocator — as the
//! global allocator for every target linking `specslice_bench`. Each
//! allocation bumps a global event counter and byte totals, so a bench can
//! report *allocation counts* and *peak live bytes* the same way the
//! pipeline reports `rule_applications`: as counters, not wall-clock.
//!
//! Determinism caveat: allocation counts are a pure function of the work
//! only when the work runs on **one thread** (the work-stealing pool's
//! interleaving perturbs per-worker growth patterns). CI therefore gates
//! alloc counters measured in sequential runs only; multi-threaded numbers
//! are recorded but ungated, like wall-clock.
//!
//! Without the feature the module still compiles and the API is callable —
//! [`enabled`] returns `false` and every counter stays `0` — so bench code
//! needs no `cfg` of its own.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static COUNT: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts events and tracks live bytes.
///
/// `realloc` counts as one event of the new size (the move is one heap
/// operation from the program's point of view).
pub struct CountingAlloc;

fn on_alloc(size: usize) {
    COUNT.fetch_add(1, Relaxed);
    TOTAL_BYTES.fetch_add(size as u64, Relaxed);
    let live = CURRENT_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        CURRENT_BYTES.fetch_sub(layout.size() as u64, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            CURRENT_BYTES.fetch_sub(layout.size() as u64, Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(feature = "count-alloc")]
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Whether the counting allocator is installed (the `count-alloc` feature).
pub fn enabled() -> bool {
    cfg!(feature = "count-alloc")
}

/// Point-in-time reading of the global counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocation events since process start (alloc + realloc).
    pub count: u64,
    /// Total bytes ever requested.
    pub total_bytes: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// High-water mark of live bytes (since start or the last
    /// [`reset_peak`]).
    pub peak_bytes: u64,
}

/// Reads the counters. All zeros when [`enabled`] is `false`.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        count: COUNT.load(Relaxed),
        total_bytes: TOTAL_BYTES.load(Relaxed),
        current_bytes: CURRENT_BYTES.load(Relaxed),
        peak_bytes: PEAK_BYTES.load(Relaxed),
    }
}

/// Rewinds the peak-bytes high-water mark to the current live-byte count,
/// so the next [`measure`] region reports its own peak.
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Relaxed), Relaxed);
}

/// Allocation activity of one [`measure`] region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocation events inside the region.
    pub count: u64,
    /// Bytes requested inside the region.
    pub bytes: u64,
    /// Absolute live-byte high-water mark reached during the region
    /// (includes bytes already live when the region began).
    pub peak_bytes: u64,
}

/// Runs `f` and reports the allocation events it performed. Only
/// meaningful for single-threaded `f` (see the module docs); zeros when
/// [`enabled`] is `false`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocDelta) {
    reset_peak();
    let before = snapshot();
    let value = f();
    let after = snapshot();
    (
        value,
        AllocDelta {
            count: after.count - before.count,
            bytes: after.total_bytes - before.total_bytes,
            peak_bytes: after.peak_bytes,
        },
    )
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux. Machine- and
/// allocator-dependent — recorded in bench reports, never gated.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_counts_when_enabled() {
        let (v, delta) = measure(|| vec![0u8; 4096]);
        assert_eq!(v.len(), 4096);
        if enabled() {
            assert!(delta.count >= 1);
            assert!(delta.bytes >= 4096);
            assert!(delta.peak_bytes >= 4096);
        } else {
            assert_eq!(delta, AllocDelta::default());
        }
    }
}
