//! The unified query-path benchmark: per-criterion `Prestar` → MRD →
//! read-out over the corpus and feature-grid workloads, with deterministic
//! pipeline counters alongside the wall-clock numbers.
//!
//! Run with: `cargo bench -p specslice-bench --bench query`
//!
//! Every workload is answered with memoization *off* and one worker thread,
//! so each criterion pays the full criterion-dependent pipeline — this is
//! the hot path that batch parallelism and the incremental memo multiply,
//! and the one the dense-ID representation targets. Sessions pin
//! `Solver::OnePass` explicitly (environment-independent counters); the
//! wall-clock loop answers the whole criterion list through `slice_batch`,
//! so the one-pass multi-criterion saturation is what the trajectory
//! numbers track, and the `saturations_run` / `criteria_per_saturation`
//! counters record how far each workload's batch collapsed.
//!
//! The bench emits a machine-readable JSON report to stdout (and to
//! `$BENCH_QUERY_JSON` when set — the committed snapshot at
//! `BENCH_query.json` in the repository root was produced that way). The
//! report has two kinds of fields:
//!
//! * **deterministic counters** (`"counters"`): Prestar rule applications,
//!   saturated-transition counts, peak worklist depth, automaton
//!   state/transition counts along the MRD chain, slice sizes, and the
//!   variant-store counters of a whole-program `specialize_program` pass
//!   (interned variants, cross-criterion dedup hits, flat-row bytes,
//!   merged function count, regenerated source bytes), and the forward
//!   mirror — every criterion re-answered as a `post*` query plus one
//!   `chop` from `main`'s first statement to the all-printfs criterion
//!   (`forward_*` / `chop_*` keys). These
//!   are pure functions of the workload — identical on every machine, at
//!   every thread count, in smoke and full mode — so CI's `bench-gate` job
//!   diffs them against the committed snapshot to catch silent changes to
//!   the query pipeline's work;
//! * **wall-clock** (`"median_total_us"`, `"us_per_criterion"`,
//!   `"geomean_us_per_criterion"`): machine-dependent, recorded for the
//!   perf trajectory but never gated on.
//!
//! `BENCH_QUERY_SMOKE=1` runs one sample per workload (the workload set is
//! unchanged, so the counters still match the snapshot).
//!
//! The bench also re-answers each workload through `slice_batch` at 1, 2,
//! and 4 worker threads and asserts the rendered slices are byte-identical
//! — the acceptance gate the dense rewrite must preserve.
//!
//! A final section drives the same queries through the `specslice-server`
//! daemon over a TCP loopback connection, measuring the full client →
//! frame → dispatch → memo-hit → frame → client round trip on a warm
//! session. Those numbers land under the report's top-level `"server"` key
//! — wall-clock only, so the bench-gate's counter diff never sees them.

use specslice::{Criterion, Slicer, SlicerConfig, Solver};
use specslice_bench::{geometric_mean, timer};
use std::fmt::Write as _;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var("BENCH_QUERY_SMOKE").is_ok()
}

fn samples() -> usize {
    if smoke() {
        1
    } else {
        10
    }
}

/// Sessions answer every criterion cold: no memo, no stats retention, one
/// worker — the measurement isolates the per-criterion query pipeline.
fn config() -> SlicerConfig {
    SlicerConfig {
        collect_stats: false,
        memoize: false,
        num_threads: 1,
        solver: Solver::OnePass,
        ..SlicerConfig::default()
    }
}

/// The deterministic per-workload counters the CI bench-gate compares.
/// Everything here is a pure function of the program + criteria — no
/// wall-clock, no allocator sizes, no thread counts.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    pds_rules: usize,
    prestar_transitions: usize,
    prestar_rule_applications: usize,
    prestar_peak_worklist: usize,
    a1_states: usize,
    a1_transitions: usize,
    det_states: usize,
    min_states: usize,
    mrd_states: usize,
    mrd_transitions: usize,
    slice_vertices: usize,
    variants: usize,
    /// Variant-store counters from the whole-program specialization pass
    /// (`specialize_program` over the per-printf criteria plus, when there
    /// are several, the all-printfs union criterion): distinct interned
    /// variants, cross-criterion dedup hits, flat-row bytes retained, the
    /// merged function count, and the merged source size.
    interned_variants: usize,
    dedup_hits: usize,
    store_row_bytes: usize,
    merged_functions: usize,
    regen_bytes: usize,
    /// One-pass batch counters from a single `slice_batch` over the
    /// workload's criteria: how many saturations the batch actually ran
    /// (the per-criterion solver would run one per criterion) and the
    /// widest criterion group a saturation carried. Pure functions of the
    /// group planning, so the bench-gate diffs them like any other counter.
    saturations_run: usize,
    criteria_per_saturation: usize,
    /// Forward-query counters: every workload criterion re-answered as a
    /// `post*` query through the same cached encoding. Saturated-transition
    /// and rule-application counts measure the forward pipeline's work the
    /// way the `prestar_*` fields measure the backward one's.
    forward_transitions: usize,
    forward_rule_applications: usize,
    forward_slice_vertices: usize,
    forward_variants: usize,
    /// Chop counters: one chop per workload, from the first statement of
    /// `main` to the all-printfs criterion (the canonical source→sink
    /// question). Sizes of the intersected result — pure functions of the
    /// workload like everything above.
    chop_vertices: usize,
    chop_variants: usize,
}

struct WorkloadRow {
    name: String,
    criteria: usize,
    counters: Counters,
    median_total: Duration,
}

/// The chop source every workload uses: the first statement vertex of
/// `main` (deterministic — vertex ids are construction-ordered).
fn chop_source(slicer: &Slicer) -> Option<Criterion> {
    let main = slicer.sdg().proc_named("main")?;
    main.vertices
        .iter()
        .copied()
        .find(|&v| {
            matches!(
                slicer.sdg().vertex(v).kind,
                specslice_sdg::VertexKind::Statement { .. }
            )
        })
        .map(Criterion::vertex)
}

/// The benched workloads: the twelve corpus emulations plus three
/// feature-grid sizes, each sliced once per printf call site (the paper's
/// multi-criterion workload).
fn workloads() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = specslice_corpus::programs()
        .into_iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    for n in [12, 24, 40] {
        out.push((format!("grid{n}"), specslice_corpus::feature_grid(n)));
    }
    out
}

fn main() {
    let samples = samples();
    let host = specslice_exec::available_parallelism();
    println!(
        "query-path bench, per-printf criteria, memoize off, {samples} sample(s), \
         host parallelism = {host}"
    );
    println!("{}", timer::header());

    let mut rows: Vec<WorkloadRow> = Vec::new();
    for (name, source) in workloads() {
        let slicer = Slicer::from_source_with(&source, config()).expect("workload program");
        let criteria: Vec<Criterion> = slicer
            .sdg()
            .printf_call_sites()
            .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
            .collect();
        if criteria.is_empty() {
            continue;
        }

        // Acceptance gate: byte-identical slices at 1, 2, and 4 worker
        // threads (SpecSlice's Debug rendering is fully deterministic).
        let baseline = format!("{:?}", slicer.slice_batch(&criteria).unwrap().slices);
        let fwd_baseline = format!(
            "{:?}",
            slicer.forward_slice_batch(&criteria).unwrap().slices
        );
        for t in [2usize, 4] {
            let parallel = Slicer::from_source_with(
                &source,
                SlicerConfig {
                    num_threads: t,
                    ..config()
                },
            )
            .expect("workload program");
            let out = format!("{:?}", parallel.slice_batch(&criteria).unwrap().slices);
            assert_eq!(out, baseline, "{name}: slices diverged at {t} threads");
            let fwd = format!(
                "{:?}",
                parallel.forward_slice_batch(&criteria).unwrap().slices
            );
            assert_eq!(
                fwd, fwd_baseline,
                "{name}: forward slices diverged at {t} threads"
            );
        }

        // Deterministic counters, summed over the workload's criteria.
        let mut counters = Counters {
            pds_rules: slicer.encoding().pds.rule_count(),
            ..Counters::default()
        };
        for criterion in &criteria {
            let (slice, stats) = slicer.slice_with_stats(criterion).expect("criterion");
            counters.prestar_transitions += stats.prestar_transitions;
            counters.prestar_rule_applications += stats.prestar_rule_applications;
            counters.prestar_peak_worklist += stats.prestar_peak_worklist;
            counters.a1_states += stats.a1_states;
            counters.a1_transitions += stats.a1_transitions;
            counters.det_states += stats.mrd.determinized_states;
            counters.min_states += stats.mrd.minimized_states;
            counters.mrd_states += stats.mrd.mrd_states;
            counters.mrd_transitions += stats.mrd.mrd_transitions;
            counters.slice_vertices += slice.total_vertices();
            counters.variants += slice.variant_count();
        }

        // The forward mirror: the same criteria re-answered as `post*`
        // queries through the same cached encoding, plus one chop from the
        // first statement of `main` to the all-printfs criterion. The
        // counters are pure functions of the workload, so the bench-gate
        // diffs them exactly like the backward ones.
        for criterion in &criteria {
            let (slice, stats) = slicer
                .forward_slice_with_stats(criterion)
                .expect("forward criterion");
            counters.forward_transitions += stats.prestar_transitions;
            counters.forward_rule_applications += stats.prestar_rule_applications;
            counters.forward_slice_vertices += slice.total_vertices();
            counters.forward_variants += slice.variant_count();
        }
        if let Some(source) = chop_source(&slicer) {
            let chop = slicer
                .chop(&source, &Criterion::printf_actuals(slicer.sdg()))
                .expect("chop");
            counters.chop_vertices = chop.total_vertices();
            counters.chop_variants = chop.variant_count();
        }

        // One-pass batch counters: a single `slice_batch` over the whole
        // criterion list. Grids collapse to ⌈n/64⌉ saturations (every
        // criterion lives in `main`); corpus programs collapse per owning
        // procedure set.
        {
            let batch = slicer.slice_batch(&criteria).expect("batch");
            counters.saturations_run = batch.aggregate.saturations_run;
            counters.criteria_per_saturation = batch.aggregate.criteria_per_saturation;
            if name.starts_with("grid") && criteria.len() > 1 {
                assert!(
                    counters.saturations_run < criteria.len(),
                    "{name}: one-pass ran {} saturations for {} criteria",
                    counters.saturations_run,
                    criteria.len()
                );
            }
        }

        // Whole-program specialization: the per-printf criteria merged into
        // one output (plus the all-printfs union criterion when the program
        // has several printfs — the canonical overlapping-criteria shape,
        // which is what makes cross-criterion dedup observable even on the
        // share-nothing feature grids). A fresh session keeps the store
        // counters attributable to this pass alone; all counters recorded
        // here are deterministic, and the merged output is asserted
        // byte-identical at 1, 2, and 4 worker threads.
        {
            let mut spec_criteria = criteria.clone();
            if criteria.len() > 1 {
                spec_criteria.push(Criterion::printf_actuals(slicer.sdg()));
            }
            let spec_session =
                Slicer::from_source_with(&source, config()).expect("workload program");
            let spec = spec_session
                .specialize_program(&spec_criteria)
                .expect("specialize_program");
            let st = spec_session.store_stats();
            counters.interned_variants = st.interned;
            counters.dedup_hits = st.dedup_hits;
            counters.store_row_bytes = st.row_bytes;
            counters.merged_functions = spec.functions.len();
            counters.regen_bytes = spec.regen.source.len();
            if name.starts_with("grid") {
                assert!(
                    st.dedup_hits > 0,
                    "{name}: union criterion must dedup against per-feature slices"
                );
                // The grids take no input, so the merged program (driver
                // main included) must run end to end.
                use specslice::exec::{self, ExecRequest};
                exec::run(&ExecRequest::new(&spec.regen.program).with_fuel(ExecRequest::DEEP_FUEL))
                    .unwrap_or_else(|e| panic!("{name}: merged program failed to run: {e}"));
            }
            let spec_baseline = format!("{}\n{:?}", spec.regen.source, spec.per_criterion);
            for t in [2usize, 4] {
                let parallel = Slicer::from_source_with(
                    &source,
                    SlicerConfig {
                        num_threads: t,
                        ..config()
                    },
                )
                .expect("workload program");
                let spec_t = parallel
                    .specialize_program(&spec_criteria)
                    .expect("specialize_program");
                assert_eq!(
                    spec_baseline,
                    format!("{}\n{:?}", spec_t.regen.source, spec_t.per_criterion),
                    "{name}: merged program diverged at {t} threads"
                );
            }
        }

        // Wall-clock: answer the whole criterion list, cold, per sample —
        // through `slice_batch`, so the one-pass union saturation (still on
        // one worker thread) is what the trajectory measures.
        let s = timer::run(
            &format!("query/{}-x{}", name, criteria.len()),
            samples,
            || {
                slicer.slice_batch(&criteria).unwrap();
            },
        );
        println!("{}", s.row());
        rows.push(WorkloadRow {
            name,
            criteria: criteria.len(),
            counters,
            median_total: s.median,
        });
    }

    let geomean_us = geometric_mean(
        rows.iter()
            .map(|r| r.median_total.as_secs_f64() * 1e6 / r.criteria as f64),
    );
    println!("geomean per-criterion query time: {geomean_us:.1} us");

    println!("\nserver round trip (warm session, TCP loopback):");
    println!("{}", timer::header());
    let server_rows = bench_server(samples);

    let json = render_json(samples, host, &rows, &server_rows, geomean_us);
    println!("\n--- JSON report ---\n{json}");
    if let Ok(path) = std::env::var("BENCH_QUERY_JSON") {
        // Cargo runs bench binaries with cwd = the *package* directory;
        // relative paths are meant against the workspace root (that is
        // where the committed snapshot lives), so anchor them there.
        let path = {
            let p = std::path::PathBuf::from(&path);
            if p.is_absolute() {
                p
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create snapshot directory");
        }
        std::fs::write(&path, &json).expect("write JSON snapshot");
        eprintln!("wrote {}", path.display());
    }
}

/// One server round-trip row: the full client→daemon→client cost of a
/// `slice` request answered from a warm session's memo. Pure wall-clock —
/// this measures wire + dispatch overhead, not pipeline work.
struct ServerRow {
    name: String,
    median_round_trip: Duration,
}

/// Opens a handful of corpus programs on an in-process daemon and times
/// repeated `slice` round trips over TCP loopback. The first (warmup)
/// iteration populates the session memo, so the timed iterations measure
/// the daemon's serving overhead on the memoized path — the latency a
/// long-lived editor session actually sees.
fn bench_server(samples: usize) -> Vec<ServerRow> {
    use specslice_server::{serve, Bind, Client, Json, ServerConfig};

    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".to_string()));
    config.threads = Some(1);
    let handle = serve(config).expect("bind loopback daemon");
    let mut client = Client::connect_tcp(&handle.addr).expect("connect");
    let mut rows = Vec::new();
    for name in ["tcas", "schedule2", "go"] {
        let program = specslice_corpus::by_name(name).expect("corpus program");
        let opened = client
            .request("open", [("source", Json::str(program.source))])
            .expect("open");
        let sid = opened
            .get("session")
            .and_then(Json::as_str)
            .expect("session id")
            .to_string();
        let criterion = Json::obj([("kind", Json::str("printf_actuals"))]);
        let s = timer::run(
            &format!("server/{name}-slice-round-trip"),
            samples.max(3),
            || {
                client
                    .request(
                        "slice",
                        [
                            ("session", Json::str(sid.clone())),
                            ("criterion", criterion.clone()),
                        ],
                    )
                    .expect("slice round trip")
            },
        );
        println!("{}", s.row());
        rows.push(ServerRow {
            name: name.to_string(),
            median_round_trip: s.median,
        });
    }
    handle.stop();
    rows
}

/// Hand-rolled JSON (the workspace is dependency-free — no serde). The
/// `"counters"` objects must stay byte-stable across machines: they hold
/// only deterministic pipeline counts, formatted with fixed key order.
/// The `"server"` section is wall-clock only and lives outside
/// `"workloads"`, so the CI bench-gate's counter diff never touches it.
fn render_json(
    samples: usize,
    host: usize,
    rows: &[WorkloadRow],
    server_rows: &[ServerRow],
    geomean_us: f64,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"query\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"per-printf cold queries, corpus + feature grids\","
    );
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    let _ = writeln!(s, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.counters;
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"criteria\": {},", r.criteria);
        let _ = writeln!(s, "      \"counters\": {{");
        let _ = writeln!(s, "        \"pds_rules\": {},", c.pds_rules);
        let _ = writeln!(
            s,
            "        \"prestar_transitions\": {},",
            c.prestar_transitions
        );
        let _ = writeln!(
            s,
            "        \"prestar_rule_applications\": {},",
            c.prestar_rule_applications
        );
        let _ = writeln!(
            s,
            "        \"prestar_peak_worklist\": {},",
            c.prestar_peak_worklist
        );
        let _ = writeln!(s, "        \"a1_states\": {},", c.a1_states);
        let _ = writeln!(s, "        \"a1_transitions\": {},", c.a1_transitions);
        let _ = writeln!(s, "        \"det_states\": {},", c.det_states);
        let _ = writeln!(s, "        \"min_states\": {},", c.min_states);
        let _ = writeln!(s, "        \"mrd_states\": {},", c.mrd_states);
        let _ = writeln!(s, "        \"mrd_transitions\": {},", c.mrd_transitions);
        let _ = writeln!(s, "        \"slice_vertices\": {},", c.slice_vertices);
        let _ = writeln!(s, "        \"variants\": {},", c.variants);
        let _ = writeln!(s, "        \"interned_variants\": {},", c.interned_variants);
        let _ = writeln!(s, "        \"dedup_hits\": {},", c.dedup_hits);
        let _ = writeln!(s, "        \"store_row_bytes\": {},", c.store_row_bytes);
        let _ = writeln!(s, "        \"merged_functions\": {},", c.merged_functions);
        let _ = writeln!(s, "        \"regen_bytes\": {},", c.regen_bytes);
        let _ = writeln!(s, "        \"saturations_run\": {},", c.saturations_run);
        let _ = writeln!(
            s,
            "        \"criteria_per_saturation\": {},",
            c.criteria_per_saturation
        );
        let _ = writeln!(
            s,
            "        \"forward_transitions\": {},",
            c.forward_transitions
        );
        let _ = writeln!(
            s,
            "        \"forward_rule_applications\": {},",
            c.forward_rule_applications
        );
        let _ = writeln!(
            s,
            "        \"forward_slice_vertices\": {},",
            c.forward_slice_vertices
        );
        let _ = writeln!(s, "        \"forward_variants\": {},", c.forward_variants);
        let _ = writeln!(s, "        \"chop_vertices\": {},", c.chop_vertices);
        let _ = writeln!(s, "        \"chop_variants\": {}", c.chop_variants);
        let _ = writeln!(s, "      }},");
        let _ = writeln!(
            s,
            "      \"median_total_us\": {:.1},",
            r.median_total.as_secs_f64() * 1e6
        );
        let _ = writeln!(
            s,
            "      \"us_per_criterion\": {:.1}",
            r.median_total.as_secs_f64() * 1e6 / r.criteria as f64
        );
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"server\": {{");
    let _ = writeln!(s, "    \"transport\": \"tcp-loopback\",");
    let _ = writeln!(s, "    \"session\": \"warm (memoized slice)\",");
    let _ = writeln!(s, "    \"workloads\": [");
    for (i, r) in server_rows.iter().enumerate() {
        let comma = if i + 1 == server_rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "      {{\"name\": \"{}\", \"median_round_trip_us\": {:.1}}}{comma}",
            r.name,
            r.median_round_trip.as_secs_f64() * 1e6
        );
    }
    let _ = writeln!(s, "    ]");
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"geomean_us_per_criterion\": {geomean_us:.1}");
    let _ = writeln!(s, "}}");
    s
}
