//! The session-reuse benchmark behind the `Slicer` API: N independent
//! cold `specialize` calls (each re-encoding the SDG and rebuilding the
//! reachable automaton) vs one `Slicer` answering the same N criteria via
//! `slice_batch` against its cached encoding.
//!
//! Run with: `cargo bench -p specslice-bench --bench session`

use specslice::{specialize, Criterion, Slicer};
use specslice_bench::timer;
use specslice_sdg::Sdg;

/// Per-printf all-contexts criteria — the paper's evaluation workload.
fn per_printf_criteria(sdg: &Sdg) -> Vec<Criterion> {
    sdg.printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect()
}

fn main() {
    println!("{}", timer::header());
    let mut speedups = Vec::new();
    for name in ["wc", "print_tokens", "schedule2", "tot_info", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let slicer = Slicer::from_source(prog.source).unwrap();
        let criteria = per_printf_criteria(slicer.sdg());
        let n = criteria.len();
        if n < 2 {
            continue;
        }

        // Baseline: N cold calls — every criterion pays for a fresh
        // SDG→PDS encoding (and its own reachable automaton).
        let sdg = slicer.sdg().clone();
        let cold = timer::run(&format!("session/cold-specialize-x{n}/{name}"), 12, || {
            criteria
                .iter()
                .map(|c| specialize(&sdg, c).unwrap())
                .collect::<Vec<_>>()
        });
        println!("{}", cold.row());

        // Session: the same N criteria against one cached encoding.
        let batch = timer::run(&format!("session/slice-batch-x{n}/{name}"), 12, || {
            slicer.slice_batch(&criteria).unwrap()
        });
        println!("{}", batch.row());

        let speedup = cold.median.as_secs_f64() / batch.median.as_secs_f64();
        println!("    -> session reuse speedup: {speedup:.2}x (median)");
        speedups.push(speedup);
    }
    let gm = specslice_bench::geometric_mean(speedups.iter().copied());
    println!("\ngeometric-mean session speedup over cold calls: {gm:.2}x");
    assert!(
        gm > 1.0,
        "session reuse must beat repeated cold specialize calls"
    );
}
