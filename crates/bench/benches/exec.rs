//! The execution-backend benchmark: every corpus/grid workload's original
//! program *and* its specialized program, run through both execution
//! backends — the first direct measurement of the paper's headline claim
//! that specialization slices are executable programs that do strictly
//! less work than their originals (§5: the executable `wc` slice runs in
//! 32.5% of the original's time).
//!
//! Run with: `cargo bench -p specslice-bench --bench exec`
//!
//! Per workload: specialize against the *first* `printf` call site (the
//! single-criterion shape is where specialization pays — the all-printfs
//! union keeps everything), run original and specialized programs through
//! the tree-walking interpreter and the bytecode VM, and check on the spot
//! that the two backends agree outcome-for-outcome and that the
//! specialized program's criterion output stream matches the original's.
//!
//! The JSON report (`$BENCH_EXEC_JSON`; the committed snapshot is
//! `BENCH_exec.json` at the repository root) follows the `BENCH_query.json`
//! contract:
//!
//! * **deterministic counters** (`"counters"`): interpreter step counts for
//!   the original and specialized programs (identical across backends by
//!   the parity contract — the VM run *asserts* it), VM instruction counts,
//!   and linked code sizes. Pure functions of the workload, diffed against
//!   the committed snapshot by CI's `bench-gate` job. On the grid
//!   workloads the bench additionally asserts `spec_steps <= orig_steps` —
//!   the ≤-work direction of the paper's claim, gated on every run;
//! * **wall-clock** (`"interp_us"`, `"vm_us"`, medians of the specialized
//!   program on each backend; the VM runs a precompiled module, its
//!   steady-state shape) and the derived `"steps_ratio"`: recorded for the
//!   trajectory, never gated.
//!
//! `BENCH_EXEC_SMOKE=1` runs one wall-clock sample per workload (counters
//! are sample-independent, so they still match the snapshot).

use specslice::exec::{ExecBackend, ExecOutcome, ExecRequest, Interp, Module};
use specslice::{Criterion, Slicer, SlicerConfig, Solver};
use specslice_bench::{geometric_mean, timer};
use std::fmt::Write as _;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var("BENCH_EXEC_SMOKE").is_ok()
}

fn samples() -> usize {
    if smoke() {
        1
    } else {
        10
    }
}

fn config() -> SlicerConfig {
    SlicerConfig {
        collect_stats: false,
        memoize: false,
        num_threads: 1,
        solver: Solver::OnePass,
        ..SlicerConfig::default()
    }
}

/// The deterministic per-workload counters the CI bench-gate compares.
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    /// Interpreter statement ticks for the original program (the VM run is
    /// asserted to report the identical count).
    orig_steps: u64,
    /// Statement ticks for the first-printf specialized program.
    spec_steps: u64,
    /// VM instructions dispatched running the original / specialized
    /// program (expression and jump instructions included, so this is the
    /// machine-level work measure the step counter abstracts).
    orig_vm_instructions: u64,
    spec_vm_instructions: u64,
    /// Linked code-segment sizes in instructions.
    orig_code_words: usize,
    spec_code_words: usize,
}

struct WorkloadRow {
    name: String,
    counters: Counters,
    median_interp: Duration,
    median_vm: Duration,
}

/// Corpus programs with their sample inputs, plus the three feature grids
/// (which take no input).
fn workloads() -> Vec<(String, String, Vec<i64>)> {
    let mut out: Vec<(String, String, Vec<i64>)> = specslice_corpus::programs()
        .into_iter()
        .map(|p| {
            (
                p.name.to_string(),
                p.source.to_string(),
                p.sample_input.to_vec(),
            )
        })
        .collect();
    for n in [12, 24, 40] {
        out.push((
            format!("grid{n}"),
            specslice_corpus::feature_grid(n),
            vec![],
        ));
    }
    out
}

/// Runs a request through both backends, asserts byte-identical outcomes,
/// and returns the outcome plus the VM's instruction count.
fn run_both(name: &str, what: &str, module: &Module, req: &ExecRequest<'_>) -> (ExecOutcome, u64) {
    let interp = Interp
        .exec(req)
        .unwrap_or_else(|e| panic!("{name}: {what} failed on interp: {e}"));
    let (vm, stats) = module.exec_with_stats(req.input, req.fuel, req.recursion_limit);
    let vm = vm.unwrap_or_else(|e| panic!("{name}: {what} failed on vm: {e}"));
    assert_eq!(interp, vm, "{name}: backends diverged on {what}");
    (vm, stats.instructions)
}

fn main() {
    let samples = samples();
    let host = specslice_exec::available_parallelism();
    println!(
        "exec-backend bench, original vs first-printf specialization, interp vs vm, \
         {samples} sample(s), host parallelism = {host}"
    );
    println!("{}", timer::header());

    let mut rows: Vec<WorkloadRow> = Vec::new();
    for (name, source, input) in workloads() {
        let slicer = Slicer::from_source_with(&source, config()).expect("workload program");
        let Some(first_printf) = slicer
            .sdg()
            .printf_call_sites()
            .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
            .next()
        else {
            continue;
        };
        let spec = slicer
            .specialize_program(&[first_printf])
            .expect("specialize_program");
        let original = slicer.program().expect("from source");

        let orig_module = Module::compile(original)
            .unwrap_or_else(|e| panic!("{name}: original failed to compile: {e}"));
        let spec_module = Module::compile(&spec.regen.program)
            .unwrap_or_else(|e| panic!("{name}: specialized program failed to compile: {e}"));

        let orig_req = ExecRequest::new(original)
            .with_input(&input)
            .with_fuel(ExecRequest::DEEP_FUEL);
        let spec_req = ExecRequest::new(&spec.regen.program)
            .with_input(&input)
            .with_fuel(ExecRequest::DEEP_FUEL);

        let (orig_out, orig_instr) = run_both(&name, "original", &orig_module, &orig_req);
        let (spec_out, spec_instr) = run_both(&name, "specialized", &spec_module, &spec_req);

        // Semantic guarantee, checked where it is measured: the
        // specialized program reproduces the original's output stream at
        // the criterion printf (regeneration preserves source lines, so
        // the streams align by line).
        let spec_lines: std::collections::BTreeSet<u32> =
            spec_out.output_sites.iter().copied().collect();
        let orig_stream: Vec<i64> = orig_out
            .output
            .iter()
            .zip(&orig_out.output_sites)
            .filter(|&(_, l)| spec_lines.contains(l))
            .map(|(&v, _)| v)
            .collect();
        assert_eq!(
            spec_out.output, orig_stream,
            "{name}: specialized program diverged from the original at the criterion"
        );

        // The ≤-work direction of the paper's claim, gated on the grids
        // (share-nothing features: dropping all but one must drop work).
        if name.starts_with("grid") {
            assert!(
                spec_out.steps <= orig_out.steps,
                "{name}: specialized program did more work ({} > {} steps)",
                spec_out.steps,
                orig_out.steps
            );
        }

        let counters = Counters {
            orig_steps: orig_out.steps,
            spec_steps: spec_out.steps,
            orig_vm_instructions: orig_instr,
            spec_vm_instructions: spec_instr,
            orig_code_words: orig_module.code_words(),
            spec_code_words: spec_module.code_words(),
        };

        // Wall-clock: the specialized program on each backend. The VM side
        // runs the precompiled module — the steady-state shape validation
        // sweeps use; compilation cost is amortized away by design.
        let s_interp = timer::run(&format!("exec/{name}-spec-interp"), samples, || {
            Interp.exec(&spec_req).unwrap()
        });
        println!("{}", s_interp.row());
        let s_vm = timer::run(&format!("exec/{name}-spec-vm"), samples, || {
            spec_module
                .exec(spec_req.input, spec_req.fuel, spec_req.recursion_limit)
                .unwrap()
        });
        println!("{}", s_vm.row());

        rows.push(WorkloadRow {
            name,
            counters,
            median_interp: s_interp.median,
            median_vm: s_vm.median,
        });
    }

    let geomean_ratio = geometric_mean(
        rows.iter()
            .map(|r| r.counters.spec_steps as f64 / r.counters.orig_steps.max(1) as f64),
    );
    println!("geomean specialized/original step ratio: {geomean_ratio:.3}");

    let json = render_json(samples, host, &rows, geomean_ratio);
    println!("\n--- JSON report ---\n{json}");
    if let Ok(path) = std::env::var("BENCH_EXEC_JSON") {
        // Cargo runs bench binaries with cwd = the *package* directory;
        // relative paths are meant against the workspace root (where the
        // committed snapshot lives), so anchor them there.
        let path = {
            let p = std::path::PathBuf::from(&path);
            if p.is_absolute() {
                p
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create snapshot directory");
        }
        std::fs::write(&path, &json).expect("write JSON snapshot");
        eprintln!("wrote {}", path.display());
    }
}

/// Hand-rolled JSON (the workspace is dependency-free — no serde). The
/// `"counters"` objects hold only deterministic execution counts in fixed
/// key order; wall-clock and the derived ratio live outside them so the CI
/// counter diff never sees a machine-dependent byte.
fn render_json(samples: usize, host: usize, rows: &[WorkloadRow], geomean_ratio: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"exec\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"original vs first-printf specialization, interp vs vm\","
    );
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    let _ = writeln!(s, "  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.counters;
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"counters\": {{");
        let _ = writeln!(s, "        \"orig_steps\": {},", c.orig_steps);
        let _ = writeln!(s, "        \"spec_steps\": {},", c.spec_steps);
        let _ = writeln!(
            s,
            "        \"orig_vm_instructions\": {},",
            c.orig_vm_instructions
        );
        let _ = writeln!(
            s,
            "        \"spec_vm_instructions\": {},",
            c.spec_vm_instructions
        );
        let _ = writeln!(s, "        \"orig_code_words\": {},", c.orig_code_words);
        let _ = writeln!(s, "        \"spec_code_words\": {}", c.spec_code_words);
        let _ = writeln!(s, "      }},");
        let _ = writeln!(
            s,
            "      \"steps_ratio\": {:.4},",
            c.spec_steps as f64 / c.orig_steps.max(1) as f64
        );
        let _ = writeln!(
            s,
            "      \"interp_us\": {:.1},",
            r.median_interp.as_secs_f64() * 1e6
        );
        let _ = writeln!(s, "      \"vm_us\": {:.1}", r.median_vm.as_secs_f64() * 1e6);
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"geomean_steps_ratio\": {geomean_ratio:.4}");
    let _ = writeln!(s, "}}");
    s
}
