//! Parallel batch slicing: the per-printf corpus workload answered by
//! `Slicer::slice_batch` at 1, 2, and 4 worker threads (and the machine
//! maximum, when larger).
//!
//! Run with: `cargo bench -p specslice-bench --bench parallel`
//!
//! Prints a per-program table, verifies that every thread count produces
//! byte-identical slices, and emits a machine-readable JSON report to
//! stdout (and to `$PARALLEL_BENCH_JSON` when set — the committed snapshot
//! at `crates/bench/benches/data/parallel.json` was produced that way).
//!
//! On hosts with ≥ 4 cores the bench asserts a ≥ 1.5x geometric-mean
//! speedup at 4 threads over 1; on smaller hosts (where 4 workers share
//! fewer cores and no speedup is physically possible) it still verifies
//! determinism and records the measured numbers.

use specslice::{Criterion, Slicer, SlicerConfig};
use specslice_bench::{geometric_mean, timer};
use std::fmt::Write as _;
use std::time::Duration;

const SAMPLES: usize = 10;

/// Thread counts compared, in order. 1 is the sequential baseline.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4];
    let avail = specslice_exec::available_parallelism();
    if avail > 4 {
        counts.push(avail);
    }
    counts
}

struct ProgramRow {
    name: &'static str,
    criteria: usize,
    /// Median batch wall-clock per thread count (same order as
    /// `thread_counts()`).
    medians: Vec<Duration>,
}

fn main() {
    let counts = thread_counts();
    let host = specslice_exec::available_parallelism();
    println!(
        "parallel slice_batch, per-printf criteria, {} samples, host parallelism = {host}",
        SAMPLES
    );
    println!("{}", timer::header());

    let mut rows: Vec<ProgramRow> = Vec::new();
    for prog in specslice_corpus::programs() {
        // One session per thread count: sessions are immutable, so the only
        // difference between them is the worker pool width.
        let sessions: Vec<Slicer> = counts
            .iter()
            .map(|&t| {
                Slicer::from_source_with(
                    prog.source,
                    SlicerConfig {
                        collect_stats: false,
                        num_threads: t,
                        ..SlicerConfig::default()
                    },
                )
                .expect("corpus program")
            })
            .collect();
        let criteria: Vec<Criterion> = sessions[0]
            .sdg()
            .printf_call_sites()
            .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
            .collect();
        if criteria.is_empty() {
            continue;
        }

        // Acceptance gate: byte-identical slice output at every thread
        // count (the Debug rendering of a SpecSlice is fully deterministic).
        let baseline = format!("{:?}", sessions[0].slice_batch(&criteria).unwrap().slices);
        for (slicer, &t) in sessions.iter().zip(&counts).skip(1) {
            let out = format!("{:?}", slicer.slice_batch(&criteria).unwrap().slices);
            assert_eq!(
                out, baseline,
                "{}: slice_batch output diverged at {t} threads",
                prog.name
            );
        }

        let mut medians = Vec::new();
        for (slicer, &t) in sessions.iter().zip(&counts) {
            // Warm the lazily-built reachable automaton outside the timer so
            // every thread count pays identical one-time costs.
            slicer.slice_batch(&criteria).unwrap();
            let n = criteria.len();
            let s = timer::run(
                &format!("parallel/batch-x{n}-t{t}/{}", prog.name),
                SAMPLES,
                || slicer.slice_batch(&criteria).unwrap(),
            );
            println!("{}", s.row());
            medians.push(s.median);
        }
        rows.push(ProgramRow {
            name: prog.name,
            criteria: criteria.len(),
            medians,
        });
    }

    // Two aggregates per thread count: the geometric-mean of per-program
    // speedups (every program weighted equally — including `tcas`, whose
    // single-criterion batch cannot parallelize at all), and the corpus
    // wall-clock ratio (total time to answer the whole 12-program
    // workload), which is what a corpus-sweeping client experiences.
    let mut geomeans = Vec::new();
    let mut totals = Vec::new();
    for (ci, &t) in counts.iter().enumerate() {
        let gm = geometric_mean(
            rows.iter()
                .map(|r| r.medians[0].as_secs_f64() / r.medians[ci].as_secs_f64()),
        );
        let sum = |i: usize| -> f64 { rows.iter().map(|r| r.medians[i].as_secs_f64()).sum() };
        let total = sum(0) / sum(ci);
        println!(
            "speedup at {t} threads vs 1: corpus wall-clock {total:.2}x, \
             per-program geomean {gm:.2}x"
        );
        geomeans.push(gm);
        totals.push(total);
    }

    let json = render_json(host, &counts, &rows, &geomeans, &totals);
    println!("\n--- JSON report ---\n{json}");
    if let Ok(path) = std::env::var("PARALLEL_BENCH_JSON") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create snapshot directory");
        }
        std::fs::write(&path, &json).expect("write JSON snapshot");
        eprintln!("wrote {path}");
    }

    let idx4 = counts.iter().position(|&t| t == 4).expect("4 is benched");
    if host >= 4 {
        assert!(
            totals[idx4] >= 1.5,
            "4-thread slice_batch must be >= 1.5x over sequential on a \
             >= 4-core host (measured {:.2}x corpus wall-clock)",
            totals[idx4]
        );
    } else {
        println!(
            "host has {host} core(s) < 4: skipping the 4-thread >= 1.5x assertion \
             (measured {:.2}x); determinism was verified above",
            totals[idx4]
        );
    }
}

/// Hand-rolled JSON (the workspace is dependency-free — no serde).
fn render_json(
    host: usize,
    counts: &[usize],
    rows: &[ProgramRow],
    geomeans: &[f64],
    totals: &[f64],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"parallel\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"per-printf slice_batch, 12-program corpus\","
    );
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    if host < 4 {
        let _ = writeln!(
            s,
            "  \"note\": \"host had {host} core(s): thread counts beyond it \
             measure pool overhead, not parallel speedup; the >= 1.5x \
             assertion arms on hosts with >= 4 cores\","
        );
    }
    let _ = writeln!(s, "  \"samples\": {SAMPLES},");
    let _ = writeln!(
        s,
        "  \"thread_counts\": [{}],",
        counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(s, "  \"programs\": [");
    for (i, r) in rows.iter().enumerate() {
        let medians = r
            .medians
            .iter()
            .map(|d| format!("{:.1}", d.as_secs_f64() * 1e6))
            .collect::<Vec<_>>()
            .join(", ");
        let speedups = r
            .medians
            .iter()
            .map(|d| format!("{:.2}", r.medians[0].as_secs_f64() / d.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"criteria\": {}, \"median_us\": [{medians}], \
             \"speedup_vs_1\": [{speedups}]}}{comma}",
            r.name, r.criteria
        );
    }
    let _ = writeln!(s, "  ],");
    let fmt = |v: &[f64]| {
        v.iter()
            .map(|g| format!("{g:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(s, "  \"geomean_speedup_vs_1\": [{}],", fmt(geomeans));
    let _ = writeln!(s, "  \"corpus_wallclock_speedup_vs_1\": [{}]", fmt(totals));
    let _ = writeln!(s, "}}");
    s
}
