//! Automaton-layer benchmarks: Prestar saturation and the MRD pipeline
//! (the paper's Fig. 21 column 6 / Fig. 22 column 6 quantities).
//! Run with: `cargo bench -p specslice-bench --bench automata`

use specslice::encode::MAIN_CONTROL;
use specslice::{criteria, Criterion, Slicer};
use specslice_bench::timer;
use specslice_fsa::mrd;
use specslice_pds::prestar;

fn main() {
    println!("{}", timer::header());
    bench_prestar();
    bench_mrd();
}

fn bench_prestar() {
    for name in ["tcas", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let slicer = Slicer::from_source(prog.source).unwrap();
        let enc = slicer.encoding();
        let criterion = Criterion::printf_actuals(slicer.sdg());
        let query = criteria::query_automaton(slicer.sdg(), enc, &criterion).unwrap();
        println!(
            "{}",
            timer::run(&format!("prestar/saturate/{name}"), 20, || {
                prestar(&enc.pds, &query).expect("well-formed query")
            })
            .row()
        );
    }
}

fn bench_mrd() {
    for name in ["tcas", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let slicer = Slicer::from_source(prog.source).unwrap();
        let enc = slicer.encoding();
        let criterion = Criterion::printf_actuals(slicer.sdg());
        let query = criteria::query_automaton(slicer.sdg(), enc, &criterion).unwrap();
        let a1 = prestar(&enc.pds, &query)
            .expect("well-formed query")
            .to_nfa(MAIN_CONTROL);
        let (a1_trim, _) = a1.trimmed();
        println!(
            "{}",
            timer::run(&format!("mrd/pipeline/{name}"), 20, || mrd::mrd(&a1_trim)).row()
        );
    }
}
