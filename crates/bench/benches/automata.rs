//! Automaton-layer benchmarks: Prestar saturation and the MRD pipeline
//! (the paper's Fig. 21 column 6 / Fig. 22 column 6 quantities).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Crit};
use specslice::encode::{encode_sdg, MAIN_CONTROL};
use specslice::{criteria, Criterion};
use specslice_fsa::mrd;
use specslice_lang::frontend;
use specslice_pds::prestar;
use specslice_sdg::build::build_sdg;

fn bench_prestar(c: &mut Crit) {
    let mut group = c.benchmark_group("prestar");
    group.sample_size(20);
    for name in ["tcas", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let ast = frontend(prog.source).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let enc = encode_sdg(&sdg);
        let criterion = Criterion::printf_actuals(&sdg);
        let query = criteria::query_automaton(&sdg, &enc, &criterion).unwrap();
        group.bench_with_input(
            BenchmarkId::new("saturate", name),
            &(&enc, &query),
            |b, (enc, query)| b.iter(|| prestar(&enc.pds, query)),
        );
    }
    group.finish();
}

fn bench_mrd(c: &mut Crit) {
    let mut group = c.benchmark_group("mrd");
    group.sample_size(20);
    for name in ["tcas", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let ast = frontend(prog.source).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let enc = encode_sdg(&sdg);
        let criterion = Criterion::printf_actuals(&sdg);
        let query = criteria::query_automaton(&sdg, &enc, &criterion).unwrap();
        let a1 = prestar(&enc.pds, &query).to_nfa(MAIN_CONTROL).trimmed().0;
        group.bench_with_input(BenchmarkId::new("pipeline", name), &a1, |b, a1| {
            b.iter(|| mrd(a1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prestar, bench_mrd);
criterion_main!(benches);
