//! Scale-corpus benchmark: synthetic programs two orders of magnitude
//! beyond the paper corpus (thousands of procedures, mutual-recursion
//! rings chained into a deep SCC DAG, function-pointer webs), answered as
//! skewed many-criterion batches.
//!
//! Run with: `cargo bench -p specslice-bench --bench scale --features count-alloc`
//!
//! Each tier generates one program with [`specslice_corpus::scale_program`]
//! (fixed seed — the workload is a constant of the repository), opens one
//! session, and answers a hot/cold-skewed criterion batch drawn with
//! [`specslice_corpus::skewed_site_sample`]. The JSON report mirrors
//! `BENCH_query.json` (committed snapshot: `BENCH_scale.json` at the repo
//! root) and separates:
//!
//! * **gated counters** (`"counters"`): SDG/PDS sizes, one-pass saturation
//!   counts, slice sizes, and — when the `count-alloc` feature installs the
//!   counting allocator — allocation events and bytes for the sequential
//!   warm batch, normalized per criterion. All are pure functions of the
//!   workload on one thread, so CI's `scale-smoke` job diffs them against
//!   the snapshot (`"alloc_enabled"` records whether the allocator was
//!   live; the diff skips alloc counters when it was not).
//! * **wall-clock and RSS** (`"median_total_us"`, `"us_per_criterion"`,
//!   `"peak_rss_bytes"`): machine-dependent, recorded for the perf
//!   trajectory, never gated. Peak RSS is process-wide and cumulative
//!   across tiers (tiers run smallest-first).
//!
//! `BENCH_SCALE_SMOKE=1` runs only the smallest tier with one sample —
//! the CI configuration. The smallest tier also cross-checks the one-pass
//! SCC-sharded batch against the per-criterion reference solver and
//! asserts byte-identical batches at 1, 2, and 4 worker threads.

use specslice::{Criterion, Slicer, SlicerConfig, Solver};
use specslice_bench::{alloc_count, timer};
use specslice_corpus::{scale_program, skewed_site_sample, ScaleConfig};
use std::fmt::Write as _;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var("BENCH_SCALE_SMOKE").is_ok()
}

/// One scale tier: a generator config sized to hit a vertex budget, plus
/// the criterion-batch size drawn over its printf sites.
struct Tier {
    name: &'static str,
    cfg: ScaleConfig,
    n_criteria: usize,
}

/// The committed tiers. `n_procs` is calibrated so SDG vertex counts land
/// near the tier names (the `sdg_vertices` counter pins the exact number).
fn tiers() -> Vec<Tier> {
    let mut out = vec![
        Tier {
            name: "1k",
            cfg: ScaleConfig {
                n_procs: 16,
                n_globals: 8,
                ring: 4,
                indirect_pct: 25,
                n_printfs: 24,
            },
            n_criteria: 60,
        },
        Tier {
            name: "4k",
            cfg: ScaleConfig {
                n_procs: 64,
                n_globals: 10,
                ring: 4,
                indirect_pct: 25,
                n_printfs: 48,
            },
            n_criteria: 120,
        },
        Tier {
            name: "10k",
            cfg: ScaleConfig {
                n_procs: 170,
                n_globals: 16,
                ring: 5,
                indirect_pct: 20,
                n_printfs: 96,
            },
            n_criteria: 200,
        },
    ];
    if smoke() {
        out.truncate(1);
    }
    out
}

/// Sequential, memo-off session config: the counter-measurement path.
fn config() -> SlicerConfig {
    SlicerConfig {
        collect_stats: false,
        memoize: false,
        num_threads: 1,
        solver: Solver::OnePass,
        ..SlicerConfig::default()
    }
}

/// Opens a scale program: frontend → §6.2 indirect-call lowering →
/// session (the generator emits function-pointer webs, so the dispatcher
/// synthesis is part of the workload).
fn open(source: &str, config: SlicerConfig) -> Slicer {
    let program = specslice_lang::frontend(source).expect("scale program");
    let lowered = specslice::indirect::lower_indirect_calls(&program).expect("indirect lowering");
    Slicer::from_program_with(lowered, config).expect("scale session")
}

/// The gated per-tier counters (see the module docs).
#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    sdg_vertices: usize,
    procedures: usize,
    pds_rules: usize,
    criteria: usize,
    distinct_sites: usize,
    saturations_run: usize,
    criteria_per_saturation: usize,
    rule_applications: usize,
    transitions: usize,
    slice_vertices: usize,
    variants: usize,
    /// Allocation events / bytes of one warm sequential batch (counting
    /// allocator live), divided by the criterion count. Zero when the
    /// `count-alloc` feature is off.
    alloc_count_per_criterion: u64,
    alloc_kb_per_criterion: u64,
}

struct TierRow {
    name: &'static str,
    counters: Counters,
    median_total: Duration,
    us_per_criterion: f64,
    peak_rss_bytes: u64,
}

fn main() {
    let samples = if smoke() { 1 } else { 5 };
    let host = specslice_exec::available_parallelism();
    println!(
        "scale-corpus bench, skewed criterion batches, memoize off, \
         {samples} sample(s), host parallelism = {host}, counting allocator: {}",
        alloc_count::enabled()
    );
    println!("{}", timer::header());

    let mut rows: Vec<TierRow> = Vec::new();
    for (tier_idx, tier) in tiers().into_iter().enumerate() {
        let source = scale_program(42, tier.cfg);
        let slicer = open(&source, config());
        let sdg = slicer.sdg();

        let sites: Vec<Criterion> = sdg
            .printf_call_sites()
            .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
            .collect();
        assert!(
            !sites.is_empty(),
            "{}: generator emitted no printf sites",
            tier.name
        );
        let criteria: Vec<Criterion> = skewed_site_sample(sites.len(), tier.n_criteria, 7)
            .into_iter()
            .map(|i| sites[i].clone())
            .collect();

        let mut counters = Counters {
            sdg_vertices: sdg.vertex_count(),
            procedures: sdg.procs.len(),
            pds_rules: slicer.encoding().pds.rule_count(),
            criteria: criteria.len(),
            distinct_sites: sites.len(),
            ..Counters::default()
        };

        // Warm-up batch: first answer populates the scratch pool, so the
        // measured batch below sees the steady state a long-lived session
        // runs in. Its aggregate carries the gated saturation counters.
        let batch = slicer.slice_batch(&criteria).expect("batch");
        counters.saturations_run = batch.aggregate.saturations_run;
        counters.criteria_per_saturation = batch.aggregate.criteria_per_saturation;
        counters.rule_applications = batch.aggregate.prestar_rule_applications;
        counters.transitions = batch.aggregate.prestar_transitions;
        for slice in &batch.slices {
            counters.slice_vertices += slice.total_vertices();
            counters.variants += slice.variant_count();
        }
        assert!(
            counters.saturations_run < criteria.len(),
            "{}: one-pass ran {} saturations for {} criteria",
            tier.name,
            counters.saturations_run,
            criteria.len()
        );
        let baseline = format!("{:?}", batch.slices);

        // Allocation accounting: one warm sequential batch under the
        // counting allocator. Deterministic because the session runs one
        // worker thread and every hot-path hash is FxHash.
        let (_, delta) = alloc_count::measure(|| slicer.slice_batch(&criteria).expect("batch"));
        counters.alloc_count_per_criterion = delta.count / criteria.len() as u64;
        counters.alloc_kb_per_criterion = delta.bytes / 1024 / criteria.len() as u64;

        // Smallest tier: full acceptance cross-checks. One-pass must match
        // the per-criterion reference solver byte for byte, and the batch
        // must be thread-count independent.
        if tier_idx == 0 {
            let reference = open(
                &source,
                SlicerConfig {
                    solver: Solver::PerCriterion,
                    ..config()
                },
            );
            let ref_out = format!("{:?}", reference.slice_batch(&criteria).unwrap().slices);
            assert_eq!(
                ref_out, baseline,
                "{}: one-pass diverged from per-criterion reference",
                tier.name
            );
            for t in [2usize, 4] {
                let parallel = open(
                    &source,
                    SlicerConfig {
                        num_threads: t,
                        ..config()
                    },
                );
                let out = format!("{:?}", parallel.slice_batch(&criteria).unwrap().slices);
                assert_eq!(
                    out, baseline,
                    "{}: batch diverged at {t} threads",
                    tier.name
                );
            }
        }

        // Wall-clock: the skewed batch at host-default parallelism — the
        // number the SCC-sharded planner is meant to move. Ungated.
        let wall_session = open(
            &source,
            SlicerConfig {
                num_threads: host.min(4),
                ..config()
            },
        );
        let s = timer::run(
            &format!("scale/{}-x{}", tier.name, criteria.len()),
            samples,
            || {
                wall_session.slice_batch(&criteria).unwrap();
            },
        );
        println!("{}", s.row());

        rows.push(TierRow {
            name: tier.name,
            counters,
            median_total: s.median,
            us_per_criterion: s.median.as_secs_f64() * 1e6 / criteria.len() as f64,
            peak_rss_bytes: alloc_count::peak_rss_bytes().unwrap_or(0),
        });
    }

    let json = render_json(samples, host, &rows);
    println!("\n--- JSON report ---\n{json}");
    if let Ok(path) = std::env::var("BENCH_SCALE_JSON") {
        let path = {
            let p = std::path::PathBuf::from(&path);
            if p.is_absolute() {
                p
            } else {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                    .join("../..")
                    .join(p)
            }
        };
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create snapshot directory");
        }
        std::fs::write(&path, &json).expect("write JSON snapshot");
        eprintln!("wrote {}", path.display());
    }
}

/// Hand-rolled JSON with fixed key order, like the other bench reports.
/// `"counters"` must stay byte-stable across machines; wall-clock and RSS
/// live outside it.
fn render_json(samples: usize, host: usize, rows: &[TierRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"scale\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"scale-corpus skewed criterion batches (seed 42)\","
    );
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    let _ = writeln!(s, "  \"alloc_enabled\": {},", alloc_count::enabled());
    let _ = writeln!(s, "  \"tiers\": [");
    for (i, r) in rows.iter().enumerate() {
        let c = &r.counters;
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"counters\": {{");
        let _ = writeln!(s, "        \"sdg_vertices\": {},", c.sdg_vertices);
        let _ = writeln!(s, "        \"procedures\": {},", c.procedures);
        let _ = writeln!(s, "        \"pds_rules\": {},", c.pds_rules);
        let _ = writeln!(s, "        \"criteria\": {},", c.criteria);
        let _ = writeln!(s, "        \"distinct_sites\": {},", c.distinct_sites);
        let _ = writeln!(s, "        \"saturations_run\": {},", c.saturations_run);
        let _ = writeln!(
            s,
            "        \"criteria_per_saturation\": {},",
            c.criteria_per_saturation
        );
        let _ = writeln!(s, "        \"rule_applications\": {},", c.rule_applications);
        let _ = writeln!(s, "        \"transitions\": {},", c.transitions);
        let _ = writeln!(s, "        \"slice_vertices\": {},", c.slice_vertices);
        let _ = writeln!(s, "        \"variants\": {},", c.variants);
        let _ = writeln!(
            s,
            "        \"alloc_count_per_criterion\": {},",
            c.alloc_count_per_criterion
        );
        let _ = writeln!(
            s,
            "        \"alloc_kb_per_criterion\": {}",
            c.alloc_kb_per_criterion
        );
        let _ = writeln!(s, "      }},");
        let _ = writeln!(
            s,
            "      \"median_total_us\": {},",
            r.median_total.as_micros()
        );
        let _ = writeln!(s, "      \"us_per_criterion\": {:.1},", r.us_per_criterion);
        let _ = writeln!(s, "      \"peak_rss_bytes\": {}", r.peak_rss_bytes);
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
