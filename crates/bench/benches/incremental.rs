//! Incremental re-slicing: the edit-reslice loop via `Slicer::apply_edit`
//! versus tearing the session down and rebuilding it after every edit.
//!
//! Run with: `cargo bench -p specslice-bench --bench incremental`
//!
//! Workload, per program (the twelve corpus emulations plus three
//! feature-grid sizes): a seven-step edit script — statement edits in up to
//! three helpers, a statement insertion and a removal in a helper, a dead
//! procedure added, and one `main` edit (the reuse worst case) —
//! re-answering the full per-printf criterion workload after every edit. The incremental path patches the session in place — SDG
//! edges, PDS rules, the reachable automaton, and the criterion memo all
//! migrate — while the rebuild path does what clients had to do before
//! `apply_edit` existed: a fresh `Slicer::from_program` per edit.
//!
//! Both paths are verified byte-identical before timing. Sessions run one
//! worker thread, so the comparison isolates incremental reuse from batch
//! parallelism (see `benches/parallel.rs` for that axis).
//!
//! On hosts with ≥ 2 cores the bench asserts a ≥ 1.5x geometric-mean
//! speedup; a JSON report goes to stdout (and `$INCREMENTAL_BENCH_JSON`
//! when set — the committed snapshot at
//! `crates/bench/benches/data/incremental.json` was produced that way).
//! `INCREMENTAL_BENCH_SMOKE=1` runs one sample per program so CI can keep
//! the driver from rotting without paying for a full run.

use specslice::{Criterion, Program, ProgramDelta, Slicer, SlicerConfig};
use specslice_bench::geometric_mean;
use specslice_corpus::editscript;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

fn smoke() -> bool {
    std::env::var("INCREMENTAL_BENCH_SMOKE").is_ok()
}

fn samples() -> usize {
    if smoke() {
        1
    } else {
        10
    }
}

fn config() -> SlicerConfig {
    SlicerConfig {
        collect_stats: false,
        num_threads: 1,
        ..SlicerConfig::default()
    }
}

/// One all-contexts criterion per printf actual-in vertex — the paper's
/// per-printf workload at vertex granularity, giving the memo a realistic
/// population of independent criteria.
fn criteria_of(slicer: &Slicer) -> Vec<Criterion> {
    slicer
        .sdg()
        .printf_actual_in_vertices()
        .into_iter()
        .map(Criterion::vertex)
        .collect()
}

/// The scripted edit sequence, materialized as (delta, program-after) pairs
/// so both paths replay identical states. Weighted like a real editing
/// session: mostly localized statement edits inside helpers, one dead-code
/// addition, one `main` edit (the worst case for cache reuse) plus its
/// revert.
fn edit_script(base: &Program) -> Vec<(ProgramDelta, Program)> {
    let mut out = Vec::new();
    let mut cur = base.clone();

    // 1..=3: statement edits in up to three distinct non-main functions.
    let helpers: Vec<String> = base
        .functions
        .iter()
        .filter(|f| f.name != "main")
        .map(|f| f.name.clone())
        .take(3)
        .collect();
    for func in helpers {
        if let Some(delta) = editscript::wrap_assignment(&cur, &func) {
            cur = delta.apply(&cur).expect("scripted edit applies");
            out.push((delta, cur.clone()));
        }
    }

    // 4. Insert a fresh local (decl + assignment) into the first helper —
    // a localized statement insertion.
    let probe_host = base
        .functions
        .iter()
        .find(|f| f.name != "main")
        .map(|f| f.name.clone())
        .unwrap_or_else(|| "main".to_string());
    let delta = editscript::insert_probe(&probe_host, "__bench_probe", 7);
    cur = delta.apply(&cur).expect("scripted edit applies");
    out.push((delta, cur.clone()));

    // 5. Add a dead procedure (never called).
    let delta = editscript::add_dead_procedure("__bench_dead");
    cur = delta.apply(&cur).expect("scripted edit applies");
    out.push((delta, cur.clone()));

    // 6. One `main` edit — the worst case for cache reuse (every slice
    // mentions `main`, so nothing survives): the same probe insertion.
    let delta = editscript::insert_probe("main", "__bench_probe", 7);
    cur = delta.apply(&cur).expect("scripted edit applies");
    out.push((delta, cur.clone()));

    // 7. Remove the helper's probe assignment again (localized removal).
    let delta =
        editscript::remove_probe(&cur, &probe_host, "__bench_probe").expect("probe present");
    cur = delta.apply(&cur).expect("scripted edit applies");
    out.push((delta, cur.clone()));

    out
}

fn fingerprint(slicer: &Slicer) -> String {
    let criteria = criteria_of(slicer);
    if criteria.is_empty() {
        return String::from("<none>");
    }
    format!("{:?}", slicer.slice_batch(&criteria).unwrap().slices)
}

/// A warmed session on `base`: memo and reachable automaton populated.
fn warm_session(base: &Program) -> Slicer {
    let slicer = Slicer::from_program_with(base.clone(), config()).expect("corpus program");
    let criteria = criteria_of(&slicer);
    if !criteria.is_empty() {
        slicer.slice_batch(&criteria).unwrap();
    }
    slicer
}

struct Row {
    name: String,
    criteria: usize,
    edits: usize,
    incremental: Duration,
    rebuild: Duration,
    memo_kept_total: usize,
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

fn main() {
    let samples = samples();
    let host = specslice_exec::available_parallelism();
    println!(
        "incremental apply_edit+reslice vs session rebuild, {samples} sample(s), \
         host parallelism = {host}, 1 worker thread per session"
    );

    // The twelve Fig. 17 emulations, plus feature-grid programs at three
    // sizes. The grids model what large multi-feature programs look like —
    // per-printf slices confined to their own feature — which is where an
    // edit leaves most of the memo intact; the small, dense corpus programs
    // bound the other end, where almost every slice sees every edit.
    let mut workloads: Vec<(String, String)> = specslice_corpus::programs()
        .into_iter()
        .map(|p| (p.name.to_string(), p.source.to_string()))
        .collect();
    for n in [12usize, 24, 40] {
        workloads.push((format!("grid{n}"), specslice_corpus::feature_grid(n)));
    }

    let mut rows: Vec<Row> = Vec::new();
    for (prog_name, source) in &workloads {
        let base = specslice_lang::frontend(source).expect("workload program");
        let script = edit_script(&base);
        let criteria_n =
            criteria_of(&Slicer::from_program_with(base.clone(), config()).expect("program")).len();
        if criteria_n == 0 || script.is_empty() {
            continue;
        }

        // Acceptance gate: the two paths answer byte-identically after
        // every edit of the script.
        let mut memo_kept_total = 0usize;
        {
            let mut inc = warm_session(&base);
            for (delta, after) in &script {
                let report = inc.apply_edit(delta).unwrap();
                memo_kept_total += report.memo_kept;
                let fresh = Slicer::from_program_with(after.clone(), config()).unwrap();
                assert_eq!(
                    fingerprint(&inc),
                    fingerprint(&fresh),
                    "{prog_name}: incremental diverged from rebuild"
                );
            }
        }

        // Incremental path: one warmed session, edits applied in place.
        // Session warmup is untimed — the loop is what sustained clients pay.
        let mut inc_times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut slicer = warm_session(&base);
            let t = Instant::now();
            for (delta, _) in &script {
                slicer.apply_edit(delta).unwrap();
                let criteria = criteria_of(&slicer);
                slicer.slice_batch(&criteria).unwrap();
            }
            inc_times.push(t.elapsed());
        }

        // Rebuild path: what clients did before `apply_edit` — apply the
        // delta to their program, build a fresh session, re-answer the same
        // criteria workload. (The delta application is paid by both paths.)
        let mut rebuild_times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut cur = base.clone();
            let t = Instant::now();
            for (delta, _) in &script {
                cur = delta.apply(&cur).unwrap();
                let slicer = Slicer::from_program_with(cur.clone(), config()).unwrap();
                let criteria = criteria_of(&slicer);
                slicer.slice_batch(&criteria).unwrap();
            }
            rebuild_times.push(t.elapsed());
        }

        let row = Row {
            name: prog_name.clone(),
            criteria: criteria_n,
            edits: script.len(),
            incremental: median(inc_times),
            rebuild: median(rebuild_times),
            memo_kept_total,
        };
        println!(
            "incremental/{:<14} criteria={:<3} edits={} incremental={:>10.1?} \
             rebuild={:>10.1?} speedup={:>5.2}x memo-kept={}",
            row.name,
            row.criteria,
            row.edits,
            row.incremental,
            row.rebuild,
            row.rebuild.as_secs_f64() / row.incremental.as_secs_f64(),
            row.memo_kept_total,
        );
        rows.push(row);
    }

    let gm = geometric_mean(
        rows.iter()
            .map(|r| r.rebuild.as_secs_f64() / r.incremental.as_secs_f64()),
    );
    let total: f64 = rows.iter().map(|r| r.rebuild.as_secs_f64()).sum::<f64>()
        / rows
            .iter()
            .map(|r| r.incremental.as_secs_f64())
            .sum::<f64>();
    println!("incremental vs rebuild: geomean {gm:.2}x, corpus wall-clock {total:.2}x");

    let json = render_json(host, samples, &rows, gm, total);
    println!("\n--- JSON report ---\n{json}");
    if let Ok(path) = std::env::var("INCREMENTAL_BENCH_JSON") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).expect("create snapshot directory");
        }
        std::fs::write(&path, &json).expect("write JSON snapshot");
        eprintln!("wrote {path}");
    }

    if smoke() {
        // One noisy sample per program (the CI smoke pass) proves the
        // driver runs and stays byte-identical; it is not a measurement.
        println!(
            "smoke mode: recording {gm:.2}x without arming the >= 1.5x assertion \
             (byte-identical output was verified above)"
        );
    } else if host >= 2 {
        assert!(
            gm >= 1.5,
            "incremental edit-reslice loop must be >= 1.5x over session rebuild \
             (measured {gm:.2}x geomean)"
        );
    } else {
        println!(
            "host has {host} core(s): recording {gm:.2}x without arming the >= 1.5x \
             assertion (byte-identical output was verified above)"
        );
    }
}

/// Hand-rolled JSON (the workspace is dependency-free — no serde).
fn render_json(host: usize, samples: usize, rows: &[Row], gm: f64, total: f64) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"incremental\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"7-edit script x per-printf reslice, 12-program corpus + \
         3 feature grids, apply_edit vs from_program rebuild\","
    );
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    let _ = writeln!(s, "  \"samples\": {samples},");
    let _ = writeln!(s, "  \"programs\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            s,
            "    {{\"name\": \"{}\", \"criteria\": {}, \"edits\": {}, \
             \"incremental_us\": {:.1}, \"rebuild_us\": {:.1}, \"speedup\": {:.2}, \
             \"memo_entries_kept\": {}}}{comma}",
            r.name,
            r.criteria,
            r.edits,
            r.incremental.as_secs_f64() * 1e6,
            r.rebuild.as_secs_f64() * 1e6,
            r.rebuild.as_secs_f64() / r.incremental.as_secs_f64(),
            r.memo_kept_total,
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"geomean_speedup\": {gm:.2},");
    let _ = writeln!(s, "  \"corpus_wallclock_speedup\": {total:.2}");
    let _ = writeln!(s, "}}");
    s
}
