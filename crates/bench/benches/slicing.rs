//! End-to-end slicing benchmarks (Fig. 21's measured quantities):
//! monovariant vs polyvariant executable slicing per corpus program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion as Crit};
use specslice::{specialize, Criterion};
use specslice_lang::frontend;
use specslice_sdg::build::build_sdg;

fn bench_slicers(c: &mut Crit) {
    let mut group = c.benchmark_group("slicing");
    group.sample_size(20);
    for name in ["tcas", "schedule", "wc", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let ast = frontend(prog.source).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        let cv = sdg.printf_actual_in_vertices();
        group.bench_with_input(BenchmarkId::new("monovariant", name), &sdg, |b, sdg| {
            b.iter(|| specslice_sdg::binkley::monovariant_executable_slice(sdg, &cv))
        });
        group.bench_with_input(BenchmarkId::new("polyvariant", name), &sdg, |b, sdg| {
            b.iter(|| specialize(sdg, &Criterion::AllContexts(cv.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("closure", name), &sdg, |b, sdg| {
            b.iter(|| specslice_sdg::slice::backward_closure_slice(sdg, &cv))
        });
    }
    group.finish();
}

fn bench_sdg_build(c: &mut Crit) {
    let mut group = c.benchmark_group("sdg-build");
    group.sample_size(20);
    for name in ["tcas", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let ast = frontend(prog.source).unwrap();
        group.bench_with_input(BenchmarkId::new("build", name), &ast, |b, ast| {
            b.iter(|| build_sdg(ast).unwrap())
        });
    }
    group.finish();
}

fn bench_pk_family(c: &mut Crit) {
    // Fig. 13: exponential growth in k.
    let mut group = c.benchmark_group("pk-family");
    group.sample_size(10);
    for k in [2usize, 4, 6] {
        let src = specslice_corpus::pk_family(k);
        let ast = frontend(&src).unwrap();
        let sdg = build_sdg(&ast).unwrap();
        group.bench_with_input(BenchmarkId::new("specialize", k), &sdg, |b, sdg| {
            b.iter(|| specialize(sdg, &Criterion::printf_actuals(sdg)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_slicers, bench_sdg_build, bench_pk_family);
criterion_main!(benches);
