//! End-to-end slicing benchmarks (Fig. 21's measured quantities):
//! monovariant vs polyvariant executable slicing per corpus program.
//! Run with: `cargo bench -p specslice-bench --bench slicing`

use specslice::{Criterion, Slicer};
use specslice_bench::timer;
use specslice_lang::frontend;
use specslice_sdg::build::build_sdg;

fn main() {
    println!("{}", timer::header());
    bench_slicers();
    bench_sdg_build();
    bench_pk_family();
}

fn bench_slicers() {
    for name in ["tcas", "schedule", "wc", "gzip", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let slicer = Slicer::from_source(prog.source).unwrap();
        let sdg = slicer.sdg();
        let cv = sdg.printf_actual_in_vertices();
        println!(
            "{}",
            timer::run(&format!("slicing/monovariant/{name}"), 20, || {
                specslice_sdg::binkley::monovariant_executable_slice(sdg, &cv)
            })
            .row()
        );
        println!(
            "{}",
            timer::run(&format!("slicing/polyvariant/{name}"), 20, || {
                slicer.slice(&Criterion::AllContexts(cv.clone())).unwrap()
            })
            .row()
        );
        println!(
            "{}",
            timer::run(&format!("slicing/closure/{name}"), 20, || {
                specslice_sdg::slice::backward_closure_slice(sdg, &cv)
            })
            .row()
        );
    }
}

fn bench_sdg_build() {
    for name in ["tcas", "go"] {
        let prog = specslice_corpus::by_name(name).unwrap();
        let ast = frontend(prog.source).unwrap();
        println!(
            "{}",
            timer::run(&format!("sdg-build/{name}"), 20, || {
                build_sdg(&ast).unwrap()
            })
            .row()
        );
    }
}

fn bench_pk_family() {
    // Fig. 13: exponential growth in k.
    for k in [2usize, 4, 6] {
        let src = specslice_corpus::pk_family(k);
        let slicer = Slicer::from_source(&src).unwrap();
        println!(
            "{}",
            timer::run(&format!("pk-family/k={k}"), 10, || {
                slicer
                    .slice(&Criterion::printf_actuals(slicer.sdg()))
                    .unwrap()
            })
            .row()
        );
    }
}
