//! Dominator trees via the iterative Cooper–Harvey–Kennedy algorithm.
//!
//! Postdominators — what control-dependence computation actually needs — are
//! obtained by running the same algorithm on the reversed graph rooted at the
//! exit node; see [`DominatorTree::postdominators`].

use crate::digraph::{DiGraph, NodeId};

/// The immediate-dominator relation of a rooted digraph.
///
/// Nodes unreachable from the root have no dominator information and report
/// `None` from [`DominatorTree::idom`].
#[derive(Clone, Debug)]
pub struct DominatorTree {
    root: NodeId,
    /// `idom[n]` is the immediate dominator of `n`, `None` when `n` is the
    /// root or unreachable.
    idom: Vec<Option<NodeId>>,
    /// RPO index per node (usize::MAX when unreachable).
    order_index: Vec<usize>,
}

impl DominatorTree {
    /// Computes the dominator tree of `g` rooted at `root`.
    pub fn dominators(g: &DiGraph, root: NodeId) -> DominatorTree {
        let rpo = g.reverse_post_order(root);
        let mut order_index = vec![usize::MAX; g.node_count()];
        for (i, &n) in rpo.iter().enumerate() {
            order_index[n.index()] = i;
        }
        let mut idom: Vec<Option<NodeId>> = vec![None; g.node_count()];
        idom[root.index()] = Some(root);

        let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
            while a != b {
                while order_index[a.index()] > order_index[b.index()] {
                    a = idom[a.index()].expect("processed node has idom");
                }
                while order_index[b.index()] > order_index[a.index()] {
                    b = idom[b.index()].expect("processed node has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &n in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in g.predecessors(n) {
                    if order_index[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_none() {
                        continue; // not yet processed this round
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[n.index()] != Some(ni) {
                        idom[n.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // Normalize: the root's idom is reported as None.
        idom[root.index()] = None;
        DominatorTree {
            root,
            idom,
            order_index,
        }
    }

    /// Computes the *post*dominator tree of `g` with exit node `exit`:
    /// dominators of the reversed graph rooted at `exit`.
    pub fn postdominators(g: &DiGraph, exit: NodeId) -> DominatorTree {
        DominatorTree::dominators(&g.reversed(), exit)
    }

    /// The root (entry for dominators, exit for postdominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immediate dominator of `n` (`None` for the root or unreachable nodes).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom.get(n.index()).copied().flatten()
    }

    /// Whether `n` is reachable from the root (and thus has dominator info).
    pub fn is_reachable(&self, n: NodeId) -> bool {
        n == self.root || self.idom[n.index()].is_some()
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    ///
    /// For a postdominator tree this reads "`a` postdominates `b`".
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Returns `true` if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Iterates over `n` and its dominators up to the root.
    pub fn ancestors(&self, n: NodeId) -> Ancestors<'_> {
        Ancestors {
            tree: self,
            cur: if self.is_reachable(n) { Some(n) } else { None },
        }
    }

    /// RPO index used internally; exposed for deterministic tie-breaking.
    pub fn order_index(&self, n: NodeId) -> Option<usize> {
        let i = self.order_index[n.index()];
        (i != usize::MAX).then_some(i)
    }
}

/// Iterator over a node's chain of dominators (see [`DominatorTree::ancestors`]).
#[derive(Debug)]
pub struct Ancestors<'a> {
    tree: &'a DominatorTree,
    cur: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let n = self.cur?;
        self.cur = self.tree.idom(n);
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic CFG from the Cooper–Harvey–Kennedy paper (Figure 2).
    fn chk_example() -> (DiGraph, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ns: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
        // 6-node irreducible-ish example: edges as in the paper (renumbered).
        g.add_edge(ns[5], ns[4]);
        g.add_edge(ns[5], ns[3]);
        g.add_edge(ns[4], ns[1]);
        g.add_edge(ns[3], ns[2]);
        g.add_edge(ns[2], ns[1]);
        g.add_edge(ns[1], ns[2]);
        g.add_edge(ns[1], ns[0]);
        g.add_edge(ns[2], ns[0]);
        (g, ns)
    }

    #[test]
    fn chk_paper_example() {
        let (g, ns) = chk_example();
        let dt = DominatorTree::dominators(&g, ns[5]);
        // In the CHK paper all non-root nodes have idom = root.
        for i in 0..5 {
            assert_eq!(dt.idom(ns[i]), Some(ns[5]), "idom of node {i}");
        }
        assert_eq!(dt.idom(ns[5]), None);
    }

    #[test]
    fn straight_line_dominators() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        let dt = DominatorTree::dominators(&g, a);
        assert_eq!(dt.idom(c), Some(b));
        assert_eq!(dt.idom(b), Some(a));
        assert!(dt.dominates(a, c));
        assert!(dt.strictly_dominates(a, c));
        assert!(!dt.strictly_dominates(c, c));
    }

    #[test]
    fn diamond_postdominators() {
        // a -> b, a -> c, b -> d, c -> d : d postdominates everything; the
        // join d is the idom of a in the reversed graph.
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        let pdt = DominatorTree::postdominators(&g, d);
        assert_eq!(pdt.idom(a), Some(d));
        assert_eq!(pdt.idom(b), Some(d));
        assert_eq!(pdt.idom(c), Some(d));
        assert!(pdt.dominates(d, a)); // d postdominates a
        assert!(!pdt.dominates(b, a)); // b does not postdominate a
    }

    #[test]
    fn loop_postdominators() {
        // entry -> pred; pred -> body -> pred; pred -> exit.
        let mut g = DiGraph::new();
        let entry = g.add_node();
        let pred = g.add_node();
        let body = g.add_node();
        let exit = g.add_node();
        g.add_edge(entry, pred);
        g.add_edge(pred, body);
        g.add_edge(body, pred);
        g.add_edge(pred, exit);
        let pdt = DominatorTree::postdominators(&g, exit);
        assert_eq!(pdt.idom(body), Some(pred));
        assert_eq!(pdt.idom(pred), Some(exit));
        assert!(pdt.dominates(pred, body));
        assert!(!pdt.dominates(body, pred));
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let island = g.add_node();
        let dt = DominatorTree::dominators(&g, a);
        assert_eq!(dt.idom(island), None);
        assert!(!dt.is_reachable(island));
        assert!(!dt.dominates(a, island));
    }

    #[test]
    fn ancestors_walk_to_root() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        let dt = DominatorTree::dominators(&g, a);
        let chain: Vec<NodeId> = dt.ancestors(c).collect();
        assert_eq!(chain, vec![c, b, a]);
    }
}
