//! Small directed-graph toolkit used by the specialization-slicing stack.
//!
//! The graphs manipulated by the slicer (control-flow graphs, dependence
//! graphs, call graphs) are all dense, index-based digraphs. This crate
//! provides one compact representation, [`DiGraph`], plus the classical
//! algorithms the dependence-graph layer needs:
//!
//! * dominator / postdominator trees ([`dominators`], iterative
//!   Cooper–Harvey–Kennedy),
//! * strongly connected components ([`scc`], Tarjan),
//! * reachability and traversal orders ([`reach`]).
//!
//! # Example
//!
//! ```
//! use specslice_graphs::DiGraph;
//!
//! let mut g = DiGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b);
//! assert_eq!(g.successors(a), &[b]);
//! ```

pub mod digraph;
pub mod dominators;
pub mod reach;
pub mod scc;

pub use digraph::{DiGraph, NodeId};
pub use dominators::DominatorTree;
pub use scc::Sccs;
