//! A compact adjacency-list directed graph with stable integer node ids.

use std::fmt;

/// Identifier of a node inside a [`DiGraph`].
///
/// Node ids are dense indices assigned in insertion order; they are valid for
/// the lifetime of the graph (nodes are never removed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The position of this node in the graph's node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed graph stored as forward and reverse adjacency lists.
///
/// Parallel edges are permitted (callers that need set semantics should use
/// [`DiGraph::add_edge_unique`]). Nodes carry no payload; callers keep side
/// tables indexed by [`NodeId`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiGraph {
    succ: Vec<Vec<NodeId>>,
    pred: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        DiGraph {
            succ: Vec::with_capacity(n),
            pred: Vec::with_capacity(n),
            edge_count: 0,
        }
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        DiGraph {
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Adds a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.succ.len() as u32);
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// Iterates over all node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.succ.len() as u32).map(NodeId)
    }

    /// Adds a directed edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) {
        assert!(from.index() < self.succ.len(), "edge source out of range");
        assert!(to.index() < self.succ.len(), "edge target out of range");
        self.succ[from.index()].push(to);
        self.pred[to.index()].push(from);
        self.edge_count += 1;
    }

    /// Adds `from → to` unless an identical edge already exists.
    ///
    /// Returns `true` if the edge was inserted.
    pub fn add_edge_unique(&mut self, from: NodeId, to: NodeId) -> bool {
        if self.succ[from.index()].contains(&to) {
            false
        } else {
            self.add_edge(from, to);
            true
        }
    }

    /// Returns `true` if an edge `from → to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.succ[from.index()].contains(&to)
    }

    /// Successors of `n` in insertion order.
    pub fn successors(&self, n: NodeId) -> &[NodeId] {
        &self.succ[n.index()]
    }

    /// Predecessors of `n` in insertion order.
    pub fn predecessors(&self, n: NodeId) -> &[NodeId] {
        &self.pred[n.index()]
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |&t| (NodeId(i as u32), t)))
    }

    /// Builds the reverse graph (every edge flipped).
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::with_nodes(self.node_count());
        for (from, to) in self.edges() {
            g.add_edge(to, from);
        }
        g
    }

    /// Returns a reverse-post-order (RPO) numbering of the nodes reachable
    /// from `root`. Nodes not reachable from `root` are absent.
    pub fn reverse_post_order(&self, root: NodeId) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.node_count());
        let mut state = vec![0u8; self.node_count()]; // 0 unvisited, 1 open, 2 done
                                                      // Iterative DFS with an explicit stack of (node, next-successor-index).
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        state[root.index()] = 1;
        while let Some(&mut (n, ref mut i)) = stack.last_mut() {
            if *i < self.succ[n.index()].len() {
                let s = self.succ[n.index()][*i];
                *i += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[n.index()] = 2;
                order.push(n);
                stack.pop();
            }
        }
        order.reverse();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, c);
        g.add_edge(b, d);
        g.add_edge(c, d);
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query_edges() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.successors(a), &[b, c]);
        assert_eq!(g.predecessors(d), &[b, c]);
    }

    #[test]
    fn unique_edge_insertion() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(g.add_edge_unique(a, b));
        assert!(!g.add_edge_unique(a, b));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn reversal_flips_all_edges() {
        let (g, [a, b, _c, d]) = diamond();
        let r = g.reversed();
        assert!(r.has_edge(b, a));
        assert!(r.has_edge(d, b));
        assert_eq!(r.edge_count(), g.edge_count());
    }

    #[test]
    fn rpo_starts_at_root_and_respects_edges() {
        let (g, [a, b, c, d]) = diamond();
        let rpo = g.reverse_post_order(a);
        assert_eq!(rpo[0], a);
        assert_eq!(*rpo.last().unwrap(), d);
        let pos = |n: NodeId| rpo.iter().position(|&x| x == n).unwrap();
        assert!(pos(a) < pos(b) && pos(a) < pos(c));
        assert!(pos(b) < pos(d) && pos(c) < pos(d));
    }

    #[test]
    fn rpo_skips_unreachable() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let _island = g.add_node();
        g.add_edge(a, b);
        assert_eq!(g.reverse_post_order(a).len(), 2);
    }

    #[test]
    fn edges_iterator_matches_counts() {
        let (g, _) = diamond();
        assert_eq!(g.edges().count(), 4);
    }
}
