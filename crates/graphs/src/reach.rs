//! Reachability helpers (forward/backward closures over node sets).

use crate::digraph::{DiGraph, NodeId};

/// Returns the set of nodes reachable from `seeds` (inclusive), as a boolean
/// table indexed by node.
pub fn forward_closure(g: &DiGraph, seeds: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
    closure(g, seeds, |g, n| g.successors(n))
}

/// Returns the set of nodes that can reach `seeds` (inclusive).
pub fn backward_closure(g: &DiGraph, seeds: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
    closure(g, seeds, |g, n| g.predecessors(n))
}

fn closure<'g>(
    g: &'g DiGraph,
    seeds: impl IntoIterator<Item = NodeId>,
    next: impl Fn(&'g DiGraph, NodeId) -> &'g [NodeId],
) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    let mut work: Vec<NodeId> = Vec::new();
    for s in seeds {
        if !seen[s.index()] {
            seen[s.index()] = true;
            work.push(s);
        }
    }
    while let Some(n) = work.pop() {
        for &m in next(g, n) {
            if !seen[m.index()] {
                seen[m.index()] = true;
                work.push(m);
            }
        }
    }
    seen
}

/// Collects the node ids marked `true` in a closure table.
pub fn marked(table: &[bool]) -> Vec<NodeId> {
    table
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| b.then_some(NodeId(i as u32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        let d = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(d, c);
        let fwd = forward_closure(&g, [a]);
        assert_eq!(marked(&fwd), vec![a, b, c]);
        let bwd = backward_closure(&g, [c]);
        assert_eq!(marked(&bwd), vec![a, b, c, d]);
    }

    #[test]
    fn multiple_seeds() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, c);
        let fwd = forward_closure(&g, [a, b]);
        assert_eq!(marked(&fwd), vec![a, b, c]);
    }

    #[test]
    fn empty_seed_set() {
        let mut g = DiGraph::new();
        g.add_node();
        let fwd = forward_closure(&g, []);
        assert!(marked(&fwd).is_empty());
    }
}
