//! Strongly connected components via Tarjan's algorithm (iterative).

use crate::digraph::{DiGraph, NodeId};

/// The strongly-connected-component decomposition of a digraph.
///
/// Components are numbered in *reverse topological order* of the condensation
/// (Tarjan emits callees before callers), which is exactly the order needed
/// for bottom-up call-graph fixpoints.
#[derive(Clone, Debug)]
pub struct Sccs {
    /// Component id per node.
    component: Vec<usize>,
    /// Members of each component.
    members: Vec<Vec<NodeId>>,
}

impl Sccs {
    /// Computes SCCs of the whole graph (all nodes, reachable or not).
    pub fn compute(g: &DiGraph) -> Sccs {
        let n = g.node_count();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut component = vec![usize::MAX; n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        let mut counter = 0usize;

        // Explicit DFS frames: (node, next successor index).
        let mut frames: Vec<(NodeId, usize)> = Vec::new();
        for root in g.nodes() {
            if index[root.index()] != usize::MAX {
                continue;
            }
            frames.push((root, 0));
            index[root.index()] = counter;
            low[root.index()] = counter;
            counter += 1;
            stack.push(root);
            on_stack[root.index()] = true;

            while let Some(&mut (v, ref mut i)) = frames.last_mut() {
                if *i < g.successors(v).len() {
                    let w = g.successors(v)[*i];
                    *i += 1;
                    if index[w.index()] == usize::MAX {
                        index[w.index()] = counter;
                        low[w.index()] = counter;
                        counter += 1;
                        stack.push(w);
                        on_stack[w.index()] = true;
                        frames.push((w, 0));
                    } else if on_stack[w.index()] {
                        low[v.index()] = low[v.index()].min(index[w.index()]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent.index()] = low[parent.index()].min(low[v.index()]);
                    }
                    if low[v.index()] == index[v.index()] {
                        let cid = members.len();
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack non-empty");
                            on_stack[w.index()] = false;
                            component[w.index()] = cid;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        members.push(comp);
                    }
                }
            }
        }
        Sccs { component, members }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Component id of `n`.
    pub fn component_of(&self, n: NodeId) -> usize {
        self.component[n.index()]
    }

    /// Members of component `c`.
    pub fn members(&self, c: usize) -> &[NodeId] {
        &self.members[c]
    }

    /// Iterates over components in reverse topological order (callees first).
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.members.iter().map(|v| v.as_slice())
    }

    /// Returns `true` if `n` is in a non-trivial cycle (an SCC of size > 1 or
    /// a self-loop).
    pub fn in_cycle(&self, g: &DiGraph, n: NodeId) -> bool {
        self.members(self.component_of(n)).len() > 1 || g.has_edge(n, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycles_and_a_bridge() {
        let mut g = DiGraph::new();
        let ns: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        // cycle {0,1}, bridge 1->2, cycle {2,3}, isolated 4
        g.add_edge(ns[0], ns[1]);
        g.add_edge(ns[1], ns[0]);
        g.add_edge(ns[1], ns[2]);
        g.add_edge(ns[2], ns[3]);
        g.add_edge(ns[3], ns[2]);
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.len(), 3);
        assert_eq!(sccs.component_of(ns[0]), sccs.component_of(ns[1]));
        assert_eq!(sccs.component_of(ns[2]), sccs.component_of(ns[3]));
        assert_ne!(sccs.component_of(ns[0]), sccs.component_of(ns[2]));
        // Reverse topological: the callee component {2,3} comes first.
        assert!(sccs.component_of(ns[2]) < sccs.component_of(ns[0]));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, a);
        g.add_edge(a, b);
        let sccs = Sccs::compute(&g);
        assert!(sccs.in_cycle(&g, a));
        assert!(!sccs.in_cycle(&g, b));
    }

    #[test]
    fn dag_has_singleton_components() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        let sccs = Sccs::compute(&g);
        assert_eq!(sccs.len(), 3);
        for comp in sccs.iter() {
            assert_eq!(comp.len(), 1);
        }
    }
}
