//! Shared scripted-edit builders for the incremental re-slicing test suite
//! and benchmark.
//!
//! `tests/incremental.rs` (the byte-identity property) and
//! `benches/incremental.rs` (the edit-reslice speedup) must exercise the
//! *same* edit shapes — a bench that drifts away from what the tests verify
//! measures something unproven. The delta constructors live here, once, so
//! the two drivers cannot diverge.

use specslice_lang::ast::{BinOp, Expr, Stmt, StmtKind, Type};
use specslice_lang::{Program, ProgramDelta, ProgramEdit, StmtId};

/// The id of the first statement (in visit order) of function `func` that
/// satisfies `pred`.
pub fn find_stmt(
    program: &Program,
    func: &str,
    pred: impl Fn(&StmtKind) -> bool,
) -> Option<StmtId> {
    let mut found = None;
    program.visit_all(|f, s| {
        if f == func && found.is_none() && pred(&s.kind) {
            found = Some(s.id);
        }
    });
    found
}

/// A delta wrapping the first assignment of `func` in `+ 0`: a structurally
/// new statement (the PDG genuinely rebuilds) whose slice shapes stay
/// comparable. `None` when `func` has no assignment.
pub fn wrap_assignment(program: &Program, func: &str) -> Option<ProgramDelta> {
    let id = find_stmt(program, func, |k| matches!(k, StmtKind::Assign { .. }))?;
    let mut replacement = None;
    program.visit_all(|_, s| {
        if s.id == id {
            if let StmtKind::Assign { name, value } = &s.kind {
                replacement = Some(Stmt::new(
                    s.line,
                    StmtKind::Assign {
                        name: name.clone(),
                        value: Expr::Binary(
                            BinOp::Add,
                            Box::new(value.clone()),
                            Box::new(Expr::Int(0)),
                        ),
                    },
                ));
            }
        }
    });
    Some(ProgramDelta::single(ProgramEdit::ReplaceStmt {
        id,
        stmt: replacement?,
    }))
}

/// A delta prepending `int <probe>; <probe> = <value>;` to `func`.
pub fn insert_probe(func: &str, probe: &str, value: i64) -> ProgramDelta {
    ProgramDelta {
        edits: vec![
            ProgramEdit::InsertStmt {
                function: func.to_string(),
                at: 0,
                stmt: Stmt::new(
                    0,
                    StmtKind::Decl {
                        name: probe.to_string(),
                        ty: Type::Int,
                        init: None,
                    },
                ),
            },
            ProgramEdit::InsertStmt {
                function: func.to_string(),
                at: 1,
                stmt: Stmt::new(
                    0,
                    StmtKind::Assign {
                        name: probe.to_string(),
                        value: Expr::Int(value),
                    },
                ),
            },
        ],
    }
}

/// A delta removing the probe assignment previously inserted into `func` by
/// [`insert_probe`]. `None` when no such statement exists.
pub fn remove_probe(program: &Program, func: &str, probe: &str) -> Option<ProgramDelta> {
    let id = find_stmt(
        program,
        func,
        |k| matches!(k, StmtKind::Assign { name, .. } if name == probe),
    )?;
    Some(ProgramDelta::single(ProgramEdit::RemoveStmt { id }))
}

/// A delta adding a dead (never-called) procedure named `name` with a small
/// local-only body.
pub fn add_dead_procedure(name: &str) -> ProgramDelta {
    ProgramDelta::single(ProgramEdit::AddFunction(specslice_lang::Function {
        name: name.to_string(),
        ret: specslice_lang::ast::RetKind::Void,
        params: vec![],
        body: specslice_lang::Block {
            stmts: vec![
                Stmt::new(
                    0,
                    StmtKind::Decl {
                        name: "z".into(),
                        ty: Type::Int,
                        init: None,
                    },
                ),
                Stmt::new(
                    0,
                    StmtKind::Assign {
                        name: "z".into(),
                        value: Expr::Int(1),
                    },
                ),
            ],
        },
        line: 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    const SRC: &str = r#"
        int g;
        void p(int a) { g = a; }
        int main() { p(3); printf("%d", g); return 0; }
    "#;

    #[test]
    fn builders_apply_cleanly() {
        let base = frontend(SRC).unwrap();
        let p1 = wrap_assignment(&base, "p").unwrap().apply(&base).unwrap();
        let p2 = insert_probe("p", "__probe", 7).apply(&p1).unwrap();
        assert!(find_stmt(&p2, "p", |k| {
            matches!(k, StmtKind::Assign { name, .. } if name == "__probe")
        })
        .is_some());
        let p3 = remove_probe(&p2, "p", "__probe")
            .unwrap()
            .apply(&p2)
            .unwrap();
        let p4 = add_dead_procedure("__dead").apply(&p3).unwrap();
        assert!(p4.function("__dead").is_some());
        assert!(wrap_assignment(&base, "nope").is_none());
        assert!(remove_probe(&base, "p", "__probe").is_none());
    }
}
