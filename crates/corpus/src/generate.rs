//! Seeded random-program generator for property-based testing.
//!
//! Every generated program is valid MiniC (passes the full frontend) and
//! terminates: the call graph is a DAG except for guarded structural
//! self-recursion (`if (p0 > 0) { f(p0 - 1, …); }`), loops iterate over
//! dedicated bounded counters, and division is never emitted. Programs are
//! deliberately rich in the patterns specialization slicing cares about:
//! procedures whose parameters are only partially relevant, shared helpers
//! called from several sites, globals written by some callees and read by
//! others, early returns, and `printf`/`scanf` I/O.

use crate::rng::StdRng;
use std::fmt::Write;

/// Tuning knobs for [`random_program`].
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of global variables (≥ 1).
    pub n_globals: usize,
    /// Number of helper functions besides `main` (≥ 1).
    pub n_funcs: usize,
    /// Maximum top-level statements per function body.
    pub max_stmts: usize,
    /// Allow guarded self-recursion.
    pub recursion: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_globals: 3,
            n_funcs: 4,
            max_stmts: 6,
            recursion: true,
        }
    }
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    out: String,
    /// Signatures of already-emitted functions: (name, n_value_params,
    /// has_ref_param, returns_int).
    sigs: Vec<(String, usize, bool, bool)>,
}

/// Generates a random, valid, terminating MiniC program.
pub fn random_program(seed: u64, cfg: GenConfig) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg,
        out: String::new(),
        sigs: Vec::new(),
    };
    g.program();
    g.out
}

impl Gen {
    fn program(&mut self) {
        let globals: Vec<String> = (0..self.cfg.n_globals.max(1))
            .map(|i| format!("g{i}"))
            .collect();
        let _ = writeln!(self.out, "int {};", globals.join(", "));
        for i in 0..self.cfg.n_funcs.max(1) {
            self.function(i);
        }
        self.main();
    }

    fn gvar(&mut self) -> String {
        let i = self.rng.gen_range(0..self.cfg.n_globals.max(1));
        format!("g{i}")
    }

    /// An expression over the given readable variable names.
    fn expr(&mut self, vars: &[String], depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            if !vars.is_empty() && self.rng.gen_bool(0.7) {
                let v = &vars[self.rng.gen_range(0..vars.len())];
                return v.clone();
            }
            return format!("{}", self.rng.gen_range(0..20));
        }
        let a = self.expr(vars, depth - 1);
        let b = self.expr(vars, depth - 1);
        let op = ["+", "-", "*"][self.rng.gen_range(0..3)];
        format!("({a} {op} {b})")
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let a = self.expr(vars, 1);
        let b = self.expr(vars, 1);
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6)];
        format!("{a} {op} {b}")
    }

    /// Emits a call to an existing function (or guarded self-recursion).
    fn call_stmt(
        &mut self,
        readable: &[String],
        locals: &[String],
        self_sig: Option<&(String, usize, bool, bool)>,
    ) -> String {
        // Choose callee: previous function, or self (guarded).
        let use_self = self.cfg.recursion && self_sig.is_some() && self.rng.gen_bool(0.3);
        let (name, n_params, has_ref, returns) = if use_self {
            self_sig.expect("checked").clone()
        } else if self.sigs.is_empty() {
            return format!("{} = {};", self.gvar(), self.expr(readable, 1));
        } else {
            let i = self.rng.gen_range(0..self.sigs.len());
            self.sigs[i].clone()
        };
        let mut args: Vec<String> = Vec::new();
        for j in 0..n_params {
            if use_self && j == 0 {
                args.push("p0 - 1".into());
            } else {
                args.push(self.expr(readable, 1));
            }
        }
        if has_ref {
            // Ref actual must be a local variable.
            args.push(locals[self.rng.gen_range(0..locals.len())].clone());
        }
        let call = if returns && self.rng.gen_bool(0.7) {
            format!(
                "{} = {}({});",
                locals[self.rng.gen_range(0..locals.len())],
                name,
                args.join(", ")
            )
        } else {
            format!("{}({});", name, args.join(", "))
        };
        if use_self {
            format!("if (p0 > 0) {{ {call} }}")
        } else {
            call
        }
    }

    fn stmt(
        &mut self,
        readable: &[String],
        locals: &[String],
        self_sig: Option<&(String, usize, bool, bool)>,
        loop_counter: &mut usize,
        depth: usize,
    ) -> String {
        match self.rng.gen_range(0..10) {
            0 | 1 => format!("{} = {};", self.gvar(), self.expr(readable, 2)),
            2 | 3 => format!(
                "{} = {};",
                locals[self.rng.gen_range(0..locals.len())],
                self.expr(readable, 2)
            ),
            4 => {
                let c = self.cond(readable);
                let then = self.stmt(readable, locals, self_sig, loop_counter, 0);
                if depth > 0 && self.rng.gen_bool(0.5) {
                    let els = self.stmt(readable, locals, self_sig, loop_counter, 0);
                    format!("if ({c}) {{ {then} }} else {{ {els} }}")
                } else {
                    format!("if ({c}) {{ {then} }}")
                }
            }
            5 if depth > 0 => {
                // Bounded loop over a dedicated counter.
                let lc = format!("lc{loop_counter}");
                *loop_counter += 1;
                let bound = self.rng.gen_range(2..5);
                let body = self.stmt(readable, locals, self_sig, loop_counter, 0);
                format!("{lc} = 0; while ({lc} < {bound}) {{ {body} {lc} = {lc} + 1; }}")
            }
            6 => {
                let c = self.cond(readable);
                format!("if ({c}) {{ return; }}")
            }
            _ => self.call_stmt(readable, locals, self_sig),
        }
    }

    fn function(&mut self, idx: usize) {
        let name = format!("f{idx}");
        let n_params = self.rng.gen_range(1..=3);
        let has_ref = self.rng.gen_bool(0.4);
        let returns = self.rng.gen_bool(0.5);
        let mut params: Vec<String> = (0..n_params).map(|j| format!("int p{j}")).collect();
        if has_ref {
            params.push("int& r0".into());
        }
        let ret = if returns { "int" } else { "void" };
        let sig = (name.clone(), n_params, has_ref, returns);

        let locals: Vec<String> = (0..2).map(|j| format!("l{j}")).collect();
        let mut readable: Vec<String> = (0..n_params).map(|j| format!("p{j}")).collect();
        readable.extend(locals.iter().cloned());
        if has_ref {
            readable.push("r0".into());
        }
        for i in 0..self.cfg.n_globals.max(1) {
            readable.push(format!("g{i}"));
        }

        let n_stmts = self.rng.gen_range(2..=self.cfg.max_stmts.max(2));
        let mut loop_counter = 0usize;
        let mut body_stmts: Vec<String> = Vec::new();
        for _ in 0..n_stmts {
            let s = self.stmt(&readable, &locals, Some(&sig), &mut loop_counter, 1);
            body_stmts.push(s);
        }
        if has_ref && self.rng.gen_bool(0.8) {
            let e = self.expr(&readable, 1);
            body_stmts.push(format!("r0 = {e};"));
        }
        // `return;` statements generated above are illegal in int functions?
        // No: MiniC allows value-less returns in int functions (C89 style).
        let mut body = String::new();
        for l in &locals {
            let _ = writeln!(body, "int {l};");
        }
        for c in 0..loop_counter {
            let _ = writeln!(body, "int lc{c};");
        }
        for l in &locals {
            let _ = writeln!(body, "{l} = 0;");
        }
        for s in &body_stmts {
            let _ = writeln!(body, "{s}");
        }
        if returns {
            let e = self.expr(&readable, 1);
            let _ = writeln!(body, "return {e};");
        }
        let _ = writeln!(self.out, "{ret} {name}({}) {{\n{body}}}", params.join(", "));
        self.sigs.push(sig);
    }

    fn main(&mut self) {
        let locals: Vec<String> = (0..3).map(|j| format!("m{j}")).collect();
        let mut readable: Vec<String> = locals.clone();
        for i in 0..self.cfg.n_globals.max(1) {
            readable.push(format!("g{i}"));
        }
        let mut body = String::new();
        for l in &locals {
            let _ = writeln!(body, "int {l};");
        }
        let _ = writeln!(body, "scanf(\"%d\", &m0);");
        let _ = writeln!(body, "m0 = m0 % 4;");
        let _ = writeln!(body, "m1 = 1;");
        let _ = writeln!(body, "m2 = 2;");
        let n_stmts = self.rng.gen_range(3..=self.cfg.max_stmts.max(3) + 2);
        let mut loop_counter = 0usize;
        let mut stmts: Vec<String> = Vec::new();
        for _ in 0..n_stmts {
            // main: no self recursion, no bare `return;` confusion.
            let s = self.stmt(&readable, &locals, None, &mut loop_counter, 1);
            if s.contains("return;") {
                continue;
            }
            stmts.push(s);
        }
        for c in 0..loop_counter {
            body.insert_str(0, &format!("int lc{c};\n"));
        }
        for s in &stmts {
            let _ = writeln!(body, "{s}");
        }
        let printed: Vec<String> = (0..self.cfg.n_globals.max(1))
            .map(|i| format!("g{i}"))
            .collect();
        let fmt: Vec<&str> = printed.iter().map(|_| "%d").collect();
        let _ = writeln!(
            body,
            "printf(\"{}\", {});",
            fmt.join(" "),
            printed.join(", ")
        );
        let _ = writeln!(body, "return 0;");
        let _ = writeln!(self.out, "int main() {{\n{body}}}");
    }
}

/// Tuning knobs for [`scale_program`] — the scale-corpus generator.
///
/// Where [`GenConfig`] produces small property-test programs,
/// `ScaleConfig` synthesizes programs two orders of magnitude larger:
/// thousands of procedures arranged in mutual-recursion rings chained
/// into a deep call DAG, function-pointer webs lowered through §6.2
/// dispatchers, and printf criterion sites skewed ~80/20 between a hot
/// head region (reached from every later ring) and cold leaves.
/// Deterministic from the seed and sema-clean by construction.
#[derive(Clone, Copy, Debug)]
pub struct ScaleConfig {
    /// Procedures besides `main` (≥ 2); the scale knob.
    pub n_procs: usize,
    /// Global variables (≥ 1).
    pub n_globals: usize,
    /// Mutual-recursion ring size (≥ 1): procedures are laid out in
    /// rings of this many members, each calling the next member guarded
    /// by a decreasing depth parameter (1 = plain self-recursion).
    pub ring: usize,
    /// Percentage (0–100) of procedures that dispatch through a
    /// function-pointer web (an indirect call over a pooled target set,
    /// lowered to a §6.2 dispatcher downstream).
    pub indirect_pct: u32,
    /// printf criterion sites to scatter over procedure bodies; ~4/5
    /// land in the hot first fifth of the procedures.
    pub n_printfs: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            n_procs: 64,
            n_globals: 8,
            ring: 4,
            indirect_pct: 25,
            n_printfs: 16,
        }
    }
}

/// Number of pooled indirect-call targets per arity in [`scale_program`].
const WEB_TARGETS: usize = 5;

/// Generates a deterministic scale-corpus program (see [`ScaleConfig`]).
///
/// Structure: procedures `r0..rN` are grouped into rings; within a ring
/// each member calls the next (`if (d > 0) { rJ(d - 1, …); }`), forming
/// one call-graph SCC per ring. The first member of every ring after the
/// first calls the previous ring's entry, so the rings chain into a deep
/// DAG of SCCs with `main` at the top; additional cross-ring calls are
/// biased toward the hot head region. Webbed procedures pick a
/// function-pointer target from a per-arity pool at runtime, which the
/// §6.2 lowering turns into shared dispatchers. Every procedure
/// terminates: ring recursion consumes `d`, cross-ring calls pass small
/// constant depths, and loops never appear.
pub fn scale_program(seed: u64, cfg: ScaleConfig) -> String {
    let n = cfg.n_procs.max(2);
    let g = cfg.n_globals.max(1);
    let ring = cfg.ring.max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();

    let globals: Vec<String> = (0..g).map(|i| format!("g{i}")).collect();
    let _ = writeln!(out, "int {};", globals.join(", "));

    // Pooled indirect-call targets, two arities → two dispatcher webs.
    let webs = cfg.indirect_pct > 0;
    if webs {
        for t in 0..WEB_TARGETS {
            let op = ["+", "-", "*"][t % 3];
            let _ = writeln!(
                out,
                "int w2_{t}(int a, int b) {{ return (a {op} b) + {t}; }}"
            );
            let _ = writeln!(
                out,
                "int w3_{t}(int a, int b, int c) {{ return (a {op} b) - (c {op} {t}); }}"
            );
        }
    }

    // Hot head region: the first fifth of the procedures.
    let hot = (n / 5).max(1);

    for i in 0..n {
        let ring_start = i - i % ring;
        let rsize = ring.min(n - ring_start);
        let succ = ring_start + (i - ring_start + 1) % rsize;
        let gi = i % g;
        let gj = (i * 7 + 3) % g;

        let uses_web = webs && rng.gen_range(0..100) < cfg.indirect_pct as usize;
        let arity3 = uses_web && rng.gen_bool(0.4);

        let mut body = String::new();
        let _ = writeln!(body, "int l0;");
        if uses_web {
            if arity3 {
                let _ = writeln!(body, "int (*fp)(int, int, int);");
            } else {
                let _ = writeln!(body, "int (*fp)(int, int);");
            }
        }
        let _ = writeln!(body, "l0 = x + {};", rng.gen_range(0..7));
        let _ = writeln!(body, "g{gi} = g{gi} + x;");

        // Ring successor: the mutual-recursion edge (guarded, d shrinks).
        if succ != i {
            let _ = writeln!(body, "if (d > 0) {{ l0 = r{succ}(d - 1, l0 + 1); }}");
        } else {
            let _ = writeln!(body, "if (d > 0) {{ l0 = r{i}(d - 1, l0 + 1); }}");
        }

        // Backbone: ring entries chain to the previous ring's entry, so
        // every ring is reachable from `main` through the last ring.
        if i == ring_start && ring_start >= ring {
            let prev_entry = ring_start - ring;
            let _ = writeln!(body, "l0 = l0 + r{prev_entry}(2, g{gj});");
        }

        // Skewed cross-ring call into an earlier ring (70% hot head).
        if ring_start > 0 && rng.gen_bool(0.5) {
            let bound = ring_start.min(hot.max(1));
            let target = if rng.gen_bool(0.7) {
                rng.gen_range(0..bound)
            } else {
                rng.gen_range(0..ring_start)
            };
            let depth = rng.gen_range(1..4);
            let _ = writeln!(
                body,
                "if (x > {}) {{ l0 = l0 + r{target}({depth}, l0); }}",
                rng.gen_range(0..10)
            );
        }

        if uses_web {
            let a = rng.gen_range(0..WEB_TARGETS);
            let b = (a + 1 + rng.gen_range(0..WEB_TARGETS - 1)) % WEB_TARGETS;
            let pfx = if arity3 { "w3" } else { "w2" };
            let _ = writeln!(
                body,
                "if (x > {}) {{ fp = {pfx}_{a}; }} else {{ fp = {pfx}_{b}; }}",
                rng.gen_range(0..10)
            );
            if arity3 {
                let _ = writeln!(body, "l0 = fp(l0, g{gi}, {});", rng.gen_range(0..9));
            } else {
                let _ = writeln!(body, "l0 = fp(l0, g{gj});");
            }
        }

        let _ = writeln!(body, "g{gj} = g{gj} + l0;");
        let _ = writeln!(body, "return l0 + g{gi};");
        let _ = writeln!(out, "int r{i}(int d, int x) {{\n{body}}}");
    }

    // Scatter printf criterion sites: ~4/5 hot, 1/5 cold, deterministic.
    let mut printf_procs: Vec<usize> = Vec::with_capacity(cfg.n_printfs);
    for _ in 0..cfg.n_printfs {
        if rng.gen_bool(0.8) {
            printf_procs.push(rng.gen_range(0..hot));
        } else {
            printf_procs.push(rng.gen_range(0..n));
        }
    }
    printf_procs.sort_unstable();
    printf_procs.dedup();
    for p in printf_procs {
        let needle = format!("int r{p}(int d, int x) {{\n");
        if let Some(pos) = out.find(&needle) {
            let ret_pos = out[pos..].find("return l0").map(|o| pos + o);
            if let Some(rp) = ret_pos {
                let gk = (p * 5 + 1) % g;
                out.insert_str(rp, &format!("printf(\"%d %d\", l0, g{gk});\n"));
            }
        }
    }

    // main: seed the globals, scanf one input, enter through the last
    // ring's entry (reaching every ring via the backbone), and print.
    let last_entry = (n - 1) - (n - 1) % ring;
    let mid_entry = (n / 2) - (n / 2) % ring;
    let mut body = String::new();
    let _ = writeln!(body, "int m0;\nint m1;");
    let _ = writeln!(body, "scanf(\"%d\", &m0);");
    let _ = writeln!(body, "m0 = m0 % 3;");
    for (i, gname) in globals.iter().enumerate() {
        let _ = writeln!(body, "{gname} = {};", (i * 3 + 1) % 11);
    }
    let _ = writeln!(body, "m1 = r{last_entry}(m0 + 2, m0);");
    if mid_entry != last_entry {
        let _ = writeln!(body, "m1 = m1 + r{mid_entry}(2, m1);");
    }
    let _ = writeln!(body, "m1 = m1 + r0(1, m1);");
    let fmt: Vec<&str> = globals.iter().map(|_| "%d").collect();
    let _ = writeln!(body, "printf(\"%d\", m1);");
    let _ = writeln!(
        body,
        "printf(\"{}\", {});",
        fmt.join(" "),
        globals.join(", ")
    );
    let _ = writeln!(body, "return 0;");
    let _ = writeln!(out, "int main() {{\n{body}}}");
    out
}

/// Deterministic skewed sample of `count` site indices out of `n_sites`:
/// ~80% of picks land in the first fifth of the sites (the generator's
/// hot head), the rest are uniform. Sampling is with replacement — a hot
/// site drawn twice models the repeated-criterion traffic a warm session
/// sees — so the result may contain duplicates.
pub fn skewed_site_sample(n_sites: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(n_sites > 0, "no sites to sample");
    let hot = (n_sites / 5).max(1);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            if rng.gen_bool(0.8) {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(0..n_sites)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    #[test]
    fn generated_programs_are_valid() {
        for seed in 0..50 {
            let src = random_program(seed, GenConfig::default());
            frontend(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(7, GenConfig::default());
        let b = random_program(7, GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn scale_programs_are_valid_and_deterministic() {
        for seed in 0..4 {
            let cfg = ScaleConfig {
                n_procs: 40,
                ..ScaleConfig::default()
            };
            let src = scale_program(seed, cfg);
            assert_eq!(
                src,
                scale_program(seed, cfg),
                "seed {seed} not deterministic"
            );
            let p = frontend(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(p.functions.len(), 40 + 2 * super::WEB_TARGETS + 1);
            assert!(src.contains("(*fp)"), "seed {seed}: no indirect web");
        }
    }

    #[test]
    fn scale_ring_of_one_and_no_webs() {
        let cfg = ScaleConfig {
            n_procs: 7,
            n_globals: 2,
            ring: 1,
            indirect_pct: 0,
            n_printfs: 3,
        };
        let src = scale_program(11, cfg);
        let p = frontend(&src).unwrap();
        assert_eq!(p.functions.len(), 8);
    }

    #[test]
    fn skewed_sample_is_deterministic_and_hot_heavy() {
        let a = skewed_site_sample(100, 200, 3);
        assert_eq!(a, skewed_site_sample(100, 200, 3));
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|&i| i < 100));
        let hot = a.iter().filter(|&&i| i < 20).count();
        assert!(hot > 120, "expected hot-skewed sample, got {hot}/200 hot");
    }

    #[test]
    fn larger_configs_scale() {
        let cfg = GenConfig {
            n_globals: 6,
            n_funcs: 10,
            max_stmts: 10,
            recursion: true,
        };
        let src = random_program(1, cfg);
        let p = frontend(&src).unwrap();
        assert_eq!(p.functions.len(), 11);
    }
}
