//! Seeded random-program generator for property-based testing.
//!
//! Every generated program is valid MiniC (passes the full frontend) and
//! terminates: the call graph is a DAG except for guarded structural
//! self-recursion (`if (p0 > 0) { f(p0 - 1, …); }`), loops iterate over
//! dedicated bounded counters, and division is never emitted. Programs are
//! deliberately rich in the patterns specialization slicing cares about:
//! procedures whose parameters are only partially relevant, shared helpers
//! called from several sites, globals written by some callees and read by
//! others, early returns, and `printf`/`scanf` I/O.

use crate::rng::StdRng;
use std::fmt::Write;

/// Tuning knobs for [`random_program`].
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Number of global variables (≥ 1).
    pub n_globals: usize,
    /// Number of helper functions besides `main` (≥ 1).
    pub n_funcs: usize,
    /// Maximum top-level statements per function body.
    pub max_stmts: usize,
    /// Allow guarded self-recursion.
    pub recursion: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            n_globals: 3,
            n_funcs: 4,
            max_stmts: 6,
            recursion: true,
        }
    }
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    out: String,
    /// Signatures of already-emitted functions: (name, n_value_params,
    /// has_ref_param, returns_int).
    sigs: Vec<(String, usize, bool, bool)>,
}

/// Generates a random, valid, terminating MiniC program.
pub fn random_program(seed: u64, cfg: GenConfig) -> String {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg,
        out: String::new(),
        sigs: Vec::new(),
    };
    g.program();
    g.out
}

impl Gen {
    fn program(&mut self) {
        let globals: Vec<String> = (0..self.cfg.n_globals.max(1))
            .map(|i| format!("g{i}"))
            .collect();
        let _ = writeln!(self.out, "int {};", globals.join(", "));
        for i in 0..self.cfg.n_funcs.max(1) {
            self.function(i);
        }
        self.main();
    }

    fn gvar(&mut self) -> String {
        let i = self.rng.gen_range(0..self.cfg.n_globals.max(1));
        format!("g{i}")
    }

    /// An expression over the given readable variable names.
    fn expr(&mut self, vars: &[String], depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.35) {
            if !vars.is_empty() && self.rng.gen_bool(0.7) {
                let v = &vars[self.rng.gen_range(0..vars.len())];
                return v.clone();
            }
            return format!("{}", self.rng.gen_range(0..20));
        }
        let a = self.expr(vars, depth - 1);
        let b = self.expr(vars, depth - 1);
        let op = ["+", "-", "*"][self.rng.gen_range(0..3)];
        format!("({a} {op} {b})")
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let a = self.expr(vars, 1);
        let b = self.expr(vars, 1);
        let op = ["<", "<=", ">", ">=", "==", "!="][self.rng.gen_range(0..6)];
        format!("{a} {op} {b}")
    }

    /// Emits a call to an existing function (or guarded self-recursion).
    fn call_stmt(
        &mut self,
        readable: &[String],
        locals: &[String],
        self_sig: Option<&(String, usize, bool, bool)>,
    ) -> String {
        // Choose callee: previous function, or self (guarded).
        let use_self = self.cfg.recursion && self_sig.is_some() && self.rng.gen_bool(0.3);
        let (name, n_params, has_ref, returns) = if use_self {
            self_sig.expect("checked").clone()
        } else if self.sigs.is_empty() {
            return format!("{} = {};", self.gvar(), self.expr(readable, 1));
        } else {
            let i = self.rng.gen_range(0..self.sigs.len());
            self.sigs[i].clone()
        };
        let mut args: Vec<String> = Vec::new();
        for j in 0..n_params {
            if use_self && j == 0 {
                args.push("p0 - 1".into());
            } else {
                args.push(self.expr(readable, 1));
            }
        }
        if has_ref {
            // Ref actual must be a local variable.
            args.push(locals[self.rng.gen_range(0..locals.len())].clone());
        }
        let call = if returns && self.rng.gen_bool(0.7) {
            format!(
                "{} = {}({});",
                locals[self.rng.gen_range(0..locals.len())],
                name,
                args.join(", ")
            )
        } else {
            format!("{}({});", name, args.join(", "))
        };
        if use_self {
            format!("if (p0 > 0) {{ {call} }}")
        } else {
            call
        }
    }

    fn stmt(
        &mut self,
        readable: &[String],
        locals: &[String],
        self_sig: Option<&(String, usize, bool, bool)>,
        loop_counter: &mut usize,
        depth: usize,
    ) -> String {
        match self.rng.gen_range(0..10) {
            0 | 1 => format!("{} = {};", self.gvar(), self.expr(readable, 2)),
            2 | 3 => format!(
                "{} = {};",
                locals[self.rng.gen_range(0..locals.len())],
                self.expr(readable, 2)
            ),
            4 => {
                let c = self.cond(readable);
                let then = self.stmt(readable, locals, self_sig, loop_counter, 0);
                if depth > 0 && self.rng.gen_bool(0.5) {
                    let els = self.stmt(readable, locals, self_sig, loop_counter, 0);
                    format!("if ({c}) {{ {then} }} else {{ {els} }}")
                } else {
                    format!("if ({c}) {{ {then} }}")
                }
            }
            5 if depth > 0 => {
                // Bounded loop over a dedicated counter.
                let lc = format!("lc{loop_counter}");
                *loop_counter += 1;
                let bound = self.rng.gen_range(2..5);
                let body = self.stmt(readable, locals, self_sig, loop_counter, 0);
                format!("{lc} = 0; while ({lc} < {bound}) {{ {body} {lc} = {lc} + 1; }}")
            }
            6 => {
                let c = self.cond(readable);
                format!("if ({c}) {{ return; }}")
            }
            _ => self.call_stmt(readable, locals, self_sig),
        }
    }

    fn function(&mut self, idx: usize) {
        let name = format!("f{idx}");
        let n_params = self.rng.gen_range(1..=3);
        let has_ref = self.rng.gen_bool(0.4);
        let returns = self.rng.gen_bool(0.5);
        let mut params: Vec<String> = (0..n_params).map(|j| format!("int p{j}")).collect();
        if has_ref {
            params.push("int& r0".into());
        }
        let ret = if returns { "int" } else { "void" };
        let sig = (name.clone(), n_params, has_ref, returns);

        let locals: Vec<String> = (0..2).map(|j| format!("l{j}")).collect();
        let mut readable: Vec<String> = (0..n_params).map(|j| format!("p{j}")).collect();
        readable.extend(locals.iter().cloned());
        if has_ref {
            readable.push("r0".into());
        }
        for i in 0..self.cfg.n_globals.max(1) {
            readable.push(format!("g{i}"));
        }

        let n_stmts = self.rng.gen_range(2..=self.cfg.max_stmts.max(2));
        let mut loop_counter = 0usize;
        let mut body_stmts: Vec<String> = Vec::new();
        for _ in 0..n_stmts {
            let s = self.stmt(&readable, &locals, Some(&sig), &mut loop_counter, 1);
            body_stmts.push(s);
        }
        if has_ref && self.rng.gen_bool(0.8) {
            let e = self.expr(&readable, 1);
            body_stmts.push(format!("r0 = {e};"));
        }
        // `return;` statements generated above are illegal in int functions?
        // No: MiniC allows value-less returns in int functions (C89 style).
        let mut body = String::new();
        for l in &locals {
            let _ = writeln!(body, "int {l};");
        }
        for c in 0..loop_counter {
            let _ = writeln!(body, "int lc{c};");
        }
        for l in &locals {
            let _ = writeln!(body, "{l} = 0;");
        }
        for s in &body_stmts {
            let _ = writeln!(body, "{s}");
        }
        if returns {
            let e = self.expr(&readable, 1);
            let _ = writeln!(body, "return {e};");
        }
        let _ = writeln!(self.out, "{ret} {name}({}) {{\n{body}}}", params.join(", "));
        self.sigs.push(sig);
    }

    fn main(&mut self) {
        let locals: Vec<String> = (0..3).map(|j| format!("m{j}")).collect();
        let mut readable: Vec<String> = locals.clone();
        for i in 0..self.cfg.n_globals.max(1) {
            readable.push(format!("g{i}"));
        }
        let mut body = String::new();
        for l in &locals {
            let _ = writeln!(body, "int {l};");
        }
        let _ = writeln!(body, "scanf(\"%d\", &m0);");
        let _ = writeln!(body, "m0 = m0 % 4;");
        let _ = writeln!(body, "m1 = 1;");
        let _ = writeln!(body, "m2 = 2;");
        let n_stmts = self.rng.gen_range(3..=self.cfg.max_stmts.max(3) + 2);
        let mut loop_counter = 0usize;
        let mut stmts: Vec<String> = Vec::new();
        for _ in 0..n_stmts {
            // main: no self recursion, no bare `return;` confusion.
            let s = self.stmt(&readable, &locals, None, &mut loop_counter, 1);
            if s.contains("return;") {
                continue;
            }
            stmts.push(s);
        }
        for c in 0..loop_counter {
            body.insert_str(0, &format!("int lc{c};\n"));
        }
        for s in &stmts {
            let _ = writeln!(body, "{s}");
        }
        let printed: Vec<String> = (0..self.cfg.n_globals.max(1))
            .map(|i| format!("g{i}"))
            .collect();
        let fmt: Vec<&str> = printed.iter().map(|_| "%d").collect();
        let _ = writeln!(
            body,
            "printf(\"{}\", {});",
            fmt.join(" "),
            printed.join(", ")
        );
        let _ = writeln!(body, "return 0;");
        let _ = writeln!(self.out, "int main() {{\n{body}}}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    #[test]
    fn generated_programs_are_valid() {
        for seed in 0..50 {
            let src = random_program(seed, GenConfig::default());
            frontend(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_program(7, GenConfig::default());
        let b = random_program(7, GenConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn larger_configs_scale() {
        let cfg = GenConfig {
            n_globals: 6,
            n_funcs: 10,
            max_stmts: 10,
            recursion: true,
        };
        let src = random_program(1, cfg);
        let p = frontend(&src).unwrap();
        assert_eq!(p.functions.len(), 11);
    }
}
