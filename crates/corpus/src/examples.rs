//! The paper's worked examples as reusable constants.

/// Fig. 1(a) / Fig. 14(a): the running example; slicing at the `printf`
/// specializes `p` into `p_1(b)` and `p_2(a, b)`.
pub const FIG1: &str = r#"
int g1, g2, g3;
void p(int a, int b) {
    g1 = a;
    g2 = b;
    g3 = g2;
}
int main() {
    g2 = 100;
    p(g2, 2);
    p(g2, 3);
    p(4, g1 + g2);
    printf("%d", g2);
}
"#;

/// Fig. 2(a): direct recursion that specialization turns into mutual
/// recursion (`r_1` ↔ `r_2`), with `s` split into `s_1`/`s_2`.
pub const FIG2: &str = r#"
int g1, g2;
void s(int a, int b) {
    g1 = b;
    g2 = a;
}
int r(int k) {
    if (k > 0) {
        s(g1, g2);
        r(k - 1);
        s(g1, g2);
    }
}
int main() {
    g1 = 1;
    g2 = 2;
    r(3);
    printf("%d\n", g1);
}
"#;

/// The §1 "flawed method" example: a correct specialization slicer must not
/// leave `int z = 3;` in the variant of `p` that only computes `g1`.
pub const FLAWED: &str = r#"
int g1, g2;
void p(int a, int b) {
    g1 = a;
    int z = 3;
    g2 = b + z;
}
int main() {
    p(11, 4);
    p(g2, 2);
    printf("%d", g1);
}
"#;

/// Fig. 15: function pointers and an indirect call (§6.2).
pub const FIG15: &str = r#"
int f(int a, int b) { return a + b; }
int g(int a, int b) { return a; }
int main() {
    int (*p)(int, int);
    int x;
    int c;
    scanf("%d", &c);
    if (c > 0) { p = f; } else { p = g; }
    x = p(1, 2);
    printf("%d", x);
}
"#;

/// Fig. 16(a): sum/product via a shared `add`; removing the product feature
/// must keep `add` and drop `tally`'s `prod` parameter (§7).
pub const FIG16: &str = r#"
int add(int a, int b) {
    int q;
    q = a + b;
    return q;
}
int mult(int a, int b) {
    int i;
    int ans;
    i = 0;
    ans = 0;
    while (i < a) {
        ans = add(ans, b);
        i = add(i, 1);
    }
    return ans;
}
void tally(int& sum, int& prod, int N) {
    int i;
    i = 1;
    while (i <= N) {
        sum = add(sum, i);
        prod = mult(prod, i);
        i = add(i, 1);
    }
}
int main() {
    int sum;
    int prod;
    sum = 0;
    prod = 1;
    tally(sum, prod, 10);
    printf("%d ", sum);
    printf("%d ", prod);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    #[test]
    fn all_examples_pass_the_frontend() {
        for (name, src) in [
            ("fig1", FIG1),
            ("fig2", FIG2),
            ("flawed", FLAWED),
            ("fig15", FIG15),
            ("fig16", FIG16),
        ] {
            frontend(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
