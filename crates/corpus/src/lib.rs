//! The test-program corpus: MiniC emulations of the paper's twelve test
//! programs (Fig. 17), the paper's worked examples, the Fig. 13 exponential
//! family, and a seeded random-program generator for property-based tests.
//!
//! The original corpus (Siemens suite + wc/gzip/space/flex/go in C, analyzed
//! with CodeSurfer) is not available; these emulations reproduce what the
//! evaluation actually measures — SDG *shape*: procedures with partially
//! relevant parameters, shared helpers called with different needs,
//! recursion, library I/O, and realistic control flow. See DESIGN.md §2 for
//! the substitution argument.
//!
//! # Example
//!
//! ```
//! let programs = specslice_corpus::programs();
//! assert_eq!(programs.len(), 12);
//! let wc = specslice_corpus::by_name("wc").unwrap();
//! let ast = specslice_lang::frontend(wc.source)?;
//! assert!(ast.functions.len() >= 2);
//! # Ok::<(), specslice_lang::LangError>(())
//! ```

pub mod editscript;
pub mod examples;
pub mod generate;
pub mod rng;

pub use generate::{random_program, scale_program, skewed_site_sample, GenConfig, ScaleConfig};

/// One corpus entry.
#[derive(Clone, Copy, Debug)]
pub struct CorpusProgram {
    /// Program name (matches Fig. 17's first column).
    pub name: &'static str,
    /// MiniC source text.
    pub source: &'static str,
    /// A sample input on which the program terminates quickly.
    pub sample_input: &'static [i64],
    /// One-line description.
    pub description: &'static str,
}

/// The twelve corpus programs, in the paper's Fig. 17 order.
pub fn programs() -> Vec<CorpusProgram> {
    vec![
        CorpusProgram {
            name: "tcas",
            source: include_str!("../programs/tcas.mc"),
            sample_input: &[601, 1, 1, 500, 400, 700, 1, 640, 500, 0, 0, 1],
            description: "traffic collision avoidance advisory logic",
        },
        CorpusProgram {
            name: "schedule2",
            source: include_str!("../programs/schedule2.mc"),
            sample_input: &[1, 10, 1, 20, 2, 30, 3, 4, 3, 4, 3, 0],
            description: "process scheduler with aging",
        },
        CorpusProgram {
            name: "schedule",
            source: include_str!("../programs/schedule.mc"),
            sample_input: &[1, 1, 10, 1, 2, 20, 2, 2, 1, 3, 3, 0],
            description: "three-queue priority scheduler",
        },
        CorpusProgram {
            name: "print_tokens",
            source: include_str!("../programs/print_tokens.mc"),
            sample_input: &[1, 1, 3, 2, 2, 3, 5, 1, 1, 5, 4, 0],
            description: "lexical analyzer",
        },
        CorpusProgram {
            name: "replace",
            source: include_str!("../programs/replace.mc"),
            sample_input: &[2, 2, 7, 1, 2, 2, 2, 1, 2, 0],
            description: "pattern match and substitute",
        },
        CorpusProgram {
            name: "print_tokens2",
            source: include_str!("../programs/print_tokens2.mc"),
            sample_input: &[1, 1, 3, 4, 5, 1, 5, 4, 2, 2, 6, 0],
            description: "tokenizer with comment handling",
        },
        CorpusProgram {
            name: "tot_info",
            source: include_str!("../programs/tot_info.mc"),
            sample_input: &[2, 2, 5, 6, 7, 8, 3, 2, 1, 2, 3, 4, 5, 6, 0],
            description: "information-measure statistics",
        },
        CorpusProgram {
            name: "wc",
            source: include_str!("../programs/wc.mc"),
            sample_input: &[1, 1, 0, 1, 2, 1, 1, 1, 0, 2],
            description: "word count (the §5 speed-up experiment)",
        },
        CorpusProgram {
            name: "gzip",
            source: include_str!("../programs/gzip.mc"),
            sample_input: &[6, 5, 5, 5, 5, 7, 8, 7, 8, 7, 7, 7, 9, 0],
            description: "LZ77-flavored compressor",
        },
        CorpusProgram {
            name: "space",
            source: include_str!("../programs/space.mc"),
            sample_input: &[2, 2, 3, 190, 4, 50, 3, 10, 4, 30, 2, 1, 3, 200, 4, 70, 7, 0],
            description: "antenna-array configuration parser",
        },
        CorpusProgram {
            name: "flex",
            source: include_str!("../programs/flex.mc"),
            sample_input: &[3, 1, 2, 2, 4, 3, 6, 5, 1, 9, 2, 4, 8, 3, 0],
            description: "scanner-generator table builder + simulator",
        },
        CorpusProgram {
            name: "go",
            source: include_str!("../programs/go.mc"),
            sample_input: &[5, 1, 2, 3, 4],
            description: "game-tree position evaluator",
        },
    ]
}

/// Looks up a corpus program by name.
pub fn by_name(name: &str) -> Option<CorpusProgram> {
    programs().into_iter().find(|p| p.name == name)
}

/// Generates the Fig. 13 family member `P_k`: `k` recursive call sites,
/// each zeroing a different temporary after the recursive call, giving
/// `2^k − 1` specializations of `pk` when sliced from the final `printf`.
pub fn pk_family(k: usize) -> String {
    use std::fmt::Write;
    assert!(k >= 1, "P_k needs k >= 1");
    fn branch(i: usize, k: usize, s: &mut String) {
        writeln!(s, "pk(m - 1);").unwrap();
        for j in 1..=k {
            if j == i {
                writeln!(s, "t{j} = 0;").unwrap();
            } else {
                writeln!(s, "t{j} = g{j};").unwrap();
            }
        }
    }
    fn chain(i: usize, k: usize, s: &mut String) {
        if i == k {
            branch(i, k, s);
        } else {
            writeln!(s, "if (v == {i}) {{").unwrap();
            branch(i, k, s);
            writeln!(s, "}} else {{").unwrap();
            chain(i + 1, k, s);
            writeln!(s, "}}").unwrap();
        }
    }
    let mut s = String::new();
    let globals: Vec<String> = (1..=k).map(|i| format!("g{i}")).collect();
    writeln!(s, "int {};", globals.join(", ")).unwrap();
    writeln!(s, "void pk(int m) {{").unwrap();
    writeln!(s, "int v;").unwrap();
    (1..=k).for_each(|i| writeln!(s, "int t{i};").unwrap());
    writeln!(s, "if (m == 0) {{ return; }}").unwrap();
    writeln!(s, "v = scanf(\"%d\", &v);").unwrap();
    chain(1, k, &mut s);
    (1..=k).for_each(|j| writeln!(s, "g{j} = t{j};").unwrap());
    writeln!(s, "}}").unwrap();
    writeln!(s, "int main() {{").unwrap();
    (1..=k).for_each(|i| writeln!(s, "g{i} = {i};").unwrap());
    writeln!(s, "pk({k});").unwrap();
    let sum: Vec<String> = (1..=k).map(|i| format!("g{i}")).collect();
    writeln!(s, "printf(\"%d\\n\", {});", sum.join(" + ")).unwrap();
    writeln!(s, "return 0;").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Generates the `n`-feature grid program: `n` independent features, each
/// with its own global accumulator, a leaf `step_i` writer, a `run_i`
/// driver loop, and a `printf` reporting the accumulator. Per-printf slices
/// touch only their own feature's procedures (plus `main`), so the grid is
/// the canonical *multi-feature* workload: an edit inside feature `i`
/// leaves every other feature's slice untouched — the situation incremental
/// re-slicing (`Slicer::apply_edit`) is built for, and the shape large real
/// programs actually have (the twelve Fig. 17 emulations are too small and
/// dense for any edit to miss many slices).
pub fn feature_grid(n: usize) -> String {
    use std::fmt::Write;
    assert!(n >= 1, "feature grid needs n >= 1");
    let mut s = String::new();
    let globals: Vec<String> = (1..=n).map(|i| format!("acc{i}")).collect();
    writeln!(s, "int {};", globals.join(", ")).unwrap();
    for i in 1..=n {
        writeln!(s, "void step{i}(int x) {{ acc{i} = acc{i} + x * {i}; }}").unwrap();
        writeln!(s, "void run{i}(int seed) {{").unwrap();
        writeln!(s, "int t;").unwrap();
        writeln!(s, "t = seed;").unwrap();
        writeln!(s, "while (t > 0) {{ step{i}(t); t = t - 1; }}").unwrap();
        writeln!(s, "}}").unwrap();
    }
    writeln!(s, "int main() {{").unwrap();
    for i in 1..=n {
        writeln!(s, "acc{i} = 0;").unwrap();
        writeln!(s, "run{i}({});", i + 1).unwrap();
    }
    for i in 1..=n {
        writeln!(s, "printf(\"%d\\n\", acc{i});").unwrap();
    }
    writeln!(s, "return 0;").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    #[test]
    fn all_programs_pass_the_frontend() {
        for p in programs() {
            frontend(p.source).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn corpus_has_twelve_entries_in_fig17_order() {
        let names: Vec<&str> = programs().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "tcas",
                "schedule2",
                "schedule",
                "print_tokens",
                "replace",
                "print_tokens2",
                "tot_info",
                "wc",
                "gzip",
                "space",
                "flex",
                "go"
            ]
        );
    }

    #[test]
    fn pk_family_parses_for_small_k() {
        for k in 1..=6 {
            frontend(&pk_family(k)).unwrap_or_else(|e| panic!("P_{k}: {e}"));
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("wc").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn feature_grid_parses_and_scales() {
        for n in [1, 4, 16] {
            let p = frontend(&feature_grid(n)).unwrap_or_else(|e| panic!("grid {n}: {e}"));
            // main + (step, run) per feature.
            assert_eq!(p.functions.len(), 1 + 2 * n);
        }
    }
}
