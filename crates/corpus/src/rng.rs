//! A tiny deterministic PRNG (SplitMix64) standing in for the `rand` crate.
//!
//! The corpus only needs seeded, reproducible, uniform-ish draws for program
//! generation — not cryptographic or statistical quality — so a vendored
//! 20-line generator keeps the workspace dependency-free.

use std::ops::{Range, RangeInclusive};

/// Seeded deterministic generator with the subset of the `rand::Rng` API the
/// program generator uses.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from a range (panics if empty, like `rand`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> usize {
        let (lo, hi_incl) = range.bounds();
        assert!(lo <= hi_incl, "gen_range called with an empty range");
        let span = (hi_incl - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

/// Ranges accepted by [`StdRng::gen_range`].
pub trait SampleRange {
    /// The inclusive `(low, high)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SampleRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.end > 0, "empty range");
        (self.start, self.end - 1)
    }
}

impl SampleRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
