//! Abstract syntax tree for MiniC.
//!
//! Statements carry a program-wide dense [`StmtId`] (assigned by
//! [`crate::normalize::normalize`] / [`Program::renumber`]); the dependence
//! graph layer uses these ids to key PDG vertices back to syntax.

use std::fmt;

/// Dense, program-wide statement identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl StmtId {
    /// Sentinel for freshly-built statements that have not been renumbered.
    pub const UNASSIGNED: StmtId = StmtId(u32::MAX);

    /// The dense index of this statement.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The type of a variable or parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A machine integer.
    Int,
    /// A pointer to a function taking `arity` `int` parameters.
    FnPtr {
        /// Number of `int` parameters of the pointed-to function type.
        arity: usize,
    },
}

/// How a parameter is passed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamMode {
    /// `int x` — by value.
    Value,
    /// `int& x` — by reference (callee writes propagate to the actual).
    Ref,
    /// `int (*p)(int, ...)` — a function pointer, by value.
    FnPtr {
        /// Arity of the pointed-to function type.
        arity: usize,
    },
}

/// A formal parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Passing mode.
    pub mode: ParamMode,
}

/// Return kind of a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RetKind {
    /// `void f(...)`.
    Void,
    /// `int f(...)`.
    Int,
}

/// A whole MiniC program: globals plus functions.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// Global `int` variable names, in declaration order.
    pub globals: Vec<String>,
    /// Functions, in declaration order (`main` must be among them for
    /// whole-program analyses).
    pub functions: Vec<Function>,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return kind.
    pub ret: RetKind,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Body.
    pub body: Block,
    /// 1-based line of the definition.
    pub line: u32,
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
}

/// A statement with identity and location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stmt {
    /// Program-wide id (see [`Program::renumber`]).
    pub id: StmtId,
    /// 1-based source line.
    pub line: u32,
    /// The statement proper.
    pub kind: StmtKind,
}

impl Stmt {
    /// Builds an unnumbered statement.
    pub fn new(line: u32, kind: StmtKind) -> Stmt {
        Stmt {
            id: StmtId::UNASSIGNED,
            line,
            kind,
        }
    }
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StmtKind {
    /// Local declaration `int x;` / `int x = e;` / `int (*p)(int,int);`.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer (a defining occurrence when present).
        init: Option<Expr>,
    },
    /// Assignment `x = e;` (no calls in `e` after normalization).
    Assign {
        /// Target variable.
        name: String,
        /// Right-hand side.
        value: Expr,
    },
    /// A direct or indirect call, possibly with an assigned result.
    Call(CallStmt),
    /// `printf("fmt", args...);` — a library output call.
    Printf {
        /// Format string (uninterpreted).
        format: String,
        /// Arguments (values printed).
        args: Vec<Expr>,
    },
    /// `scanf("fmt", &a, &b);` or `x = scanf("fmt", &a);` — library input.
    Scanf {
        /// Format string (uninterpreted; each `&var` receives one input).
        format: String,
        /// Variables written by the read.
        targets: Vec<String>,
        /// Optional variable receiving `scanf`'s return value.
        assign_to: Option<String>,
    },
    /// `exit(e);` — terminates the program (a jump to program exit).
    Exit {
        /// Exit code expression.
        code: Expr,
    },
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_block: Block,
        /// Optional else branch.
        else_block: Option<Block>,
    },
    /// `while (cond) { .. }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return;` / `return e;`.
    Return {
        /// Optional returned value.
        value: Option<Expr>,
    },
    /// `break;` (innermost loop).
    Break,
    /// `continue;` (innermost loop).
    Continue,
}

/// A call together with its destination, e.g. `x = f(a, b);` or `g(a);`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallStmt {
    /// Who is being called.
    pub callee: Callee,
    /// Actual arguments, in order.
    pub args: Vec<Expr>,
    /// Variable receiving the return value, if any.
    pub assign_to: Option<String>,
}

/// Call target: a named function or a function-pointer variable.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Callee {
    /// Direct call `f(...)`.
    Named(String),
    /// Indirect call `p(...)` through function-pointer variable `p`.
    Indirect(String),
}

impl Callee {
    /// The textual name of the call target (function or pointer variable).
    pub fn name(&self) -> &str {
        match self {
            Callee::Named(s) | Callee::Indirect(s) => s,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical not `!e`.
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// C-style operator spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Expressions. After normalization no [`Expr::Call`] remains.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable read.
    Var(String),
    /// Reference to a function by name (function-pointer value), e.g. in
    /// `p = f;` or `p == f`.
    FuncRef(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Call used as a value — removed by [`crate::normalize::normalize`].
    Call(Box<CallStmt>),
}

impl Expr {
    /// Appends every variable read by this expression to `out` (duplicates
    /// kept; function references are not variable reads).
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Int(_) | Expr::FuncRef(_) => {}
            Expr::Var(v) => out.push(v.clone()),
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(c) => {
                for a in &c.args {
                    a.collect_vars(out);
                }
            }
        }
    }

    /// Variables read by this expression, deduplicated, in first-use order.
    pub fn vars(&self) -> Vec<String> {
        let mut raw = Vec::new();
        self.collect_vars(&mut raw);
        let mut seen = std::collections::HashSet::new();
        raw.retain(|v| seen.insert(v.clone()));
        raw
    }

    /// Whether the expression contains any call.
    pub fn contains_call(&self) -> bool {
        match self {
            Expr::Int(_) | Expr::Var(_) | Expr::FuncRef(_) => false,
            Expr::Unary(_, e) => e.contains_call(),
            Expr::Binary(_, a, b) => a.contains_call() || b.contains_call(),
            Expr::Call(_) => true,
        }
    }
}

impl Block {
    /// Visits every statement in the block, recursing into nested blocks.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for s in &self.stmts {
            f(s);
            match &s.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    then_block.visit(f);
                    if let Some(e) = else_block {
                        e.visit(f);
                    }
                }
                StmtKind::While { body, .. } => body.visit(f),
                _ => {}
            }
        }
    }

    /// Mutable variant of [`Block::visit`].
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut Stmt)) {
        for s in &mut self.stmts {
            f(s);
            match &mut s.kind {
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    then_block.visit_mut(f);
                    if let Some(e) = else_block {
                        e.visit_mut(f);
                    }
                }
                StmtKind::While { body, .. } => body.visit_mut(f),
                _ => {}
            }
        }
    }
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The `main` function, if present.
    pub fn main(&self) -> Option<&Function> {
        self.function("main")
    }

    /// Returns `true` if `name` is a global variable.
    pub fn is_global(&self, name: &str) -> bool {
        self.globals.iter().any(|g| g == name)
    }

    /// Assigns dense [`StmtId`]s to every statement (in function order, then
    /// lexical order within each function). Returns the number of statements.
    pub fn renumber(&mut self) -> usize {
        let mut next = 0u32;
        for f in &mut self.functions {
            f.body.visit_mut(&mut |s| {
                s.id = StmtId(next);
                next += 1;
            });
        }
        next as usize
    }

    /// Total number of statements (requires [`Program::renumber`] first).
    pub fn stmt_count(&self) -> usize {
        let mut n = 0;
        for f in &self.functions {
            f.body.visit(&mut |_| n += 1);
        }
        n
    }

    /// Visits every statement together with the name of its enclosing
    /// function.
    pub fn visit_all<'a>(&'a self, mut f: impl FnMut(&'a str, &'a Stmt)) {
        for func in &self.functions {
            func.body.visit(&mut |s| f(&func.name, s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(n: &str) -> Expr {
        Expr::Var(n.into())
    }

    #[test]
    fn expr_vars_dedup_in_order() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::Binary(
                BinOp::Mul,
                Box::new(var("b")),
                Box::new(var("a")),
            )),
            Box::new(var("b")),
        );
        assert_eq!(e.vars(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn funcref_is_not_a_var() {
        let e = Expr::Binary(
            BinOp::Eq,
            Box::new(var("p")),
            Box::new(Expr::FuncRef("f".into())),
        );
        assert_eq!(e.vars(), vec!["p".to_string()]);
    }

    #[test]
    fn contains_call_detects_nesting() {
        let call = Expr::Call(Box::new(CallStmt {
            callee: Callee::Named("f".into()),
            args: vec![],
            assign_to: None,
        }));
        let e = Expr::Unary(UnOp::Neg, Box::new(call));
        assert!(e.contains_call());
        assert!(!var("x").contains_call());
    }

    #[test]
    fn renumber_assigns_dense_ids() {
        let mut p = Program {
            globals: vec![],
            functions: vec![Function {
                name: "main".into(),
                ret: RetKind::Int,
                params: vec![],
                line: 1,
                body: Block {
                    stmts: vec![
                        Stmt::new(1, StmtKind::Break),
                        Stmt::new(
                            2,
                            StmtKind::While {
                                cond: Expr::Int(1),
                                body: Block {
                                    stmts: vec![Stmt::new(3, StmtKind::Continue)],
                                },
                            },
                        ),
                    ],
                },
            }],
        };
        assert_eq!(p.renumber(), 3);
        let mut ids = Vec::new();
        p.functions[0].body.visit(&mut |s| ids.push(s.id.0));
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(p.stmt_count(), 3);
    }
}
