//! AST normalization: call hoisting, callee resolution, renumbering.
//!
//! The SDG layer requires every call to be its own statement (so that each
//! call site gets exactly one call vertex with its actual-in/actual-out
//! vertices). [`normalize`] establishes that invariant:
//!
//! * nested calls are hoisted into fresh `__tN` temporaries
//!   (`x = f(g(a)) + 1` becomes `int __t0; __t0 = g(a); int __t1;
//!   `__t1 = f(__t0); x = __t1 + 1;`),
//! * a `while` whose condition contains a call is rewritten to
//!   `while (1) { ...hoisted...; if (!cond) { break; } body }` so the call is
//!   re-evaluated on every iteration (correct even with `continue`),
//! * call targets are resolved: `Callee::Named` that does not name a function
//!   becomes `Callee::Indirect`; `Expr::Var` naming a function becomes
//!   [`Expr::FuncRef`],
//! * statements get dense [`crate::ast::StmtId`]s.

use crate::ast::*;
use std::collections::HashSet;

/// Normalizes a freshly-parsed program. Idempotent.
pub fn normalize(mut program: Program) -> Program {
    let fn_names: HashSet<String> = program.functions.iter().map(|f| f.name.clone()).collect();
    let mut tmp_counter = 0usize;
    for f in &mut program.functions {
        hoist_block(&mut f.body, &mut tmp_counter);
    }
    for f in &mut program.functions {
        resolve_block(&mut f.body, &fn_names);
    }
    program.renumber();
    program
}

/// Replaces nested calls in `e` by temps, emitting decl+call statements.
fn hoist_expr(e: &mut Expr, line: u32, out: &mut Vec<Stmt>, tmp: &mut usize) {
    match e {
        Expr::Int(_) | Expr::Var(_) | Expr::FuncRef(_) => {}
        Expr::Unary(_, inner) => hoist_expr(inner, line, out, tmp),
        Expr::Binary(_, a, b) => {
            hoist_expr(a, line, out, tmp);
            hoist_expr(b, line, out, tmp);
        }
        Expr::Call(_) => {
            // Take ownership of the call, hoist its own arguments first.
            let Expr::Call(call) = std::mem::replace(e, Expr::Int(0)) else {
                unreachable!()
            };
            let mut call = *call;
            for a in &mut call.args {
                hoist_expr(a, line, out, tmp);
            }
            let name = format!("__t{}", *tmp);
            *tmp += 1;
            out.push(Stmt::new(
                line,
                StmtKind::Decl {
                    name: name.clone(),
                    ty: Type::Int,
                    init: None,
                },
            ));
            call.assign_to = Some(name.clone());
            out.push(Stmt::new(line, StmtKind::Call(call)));
            *e = Expr::Var(name);
        }
    }
}

fn hoist_block(block: &mut Block, tmp: &mut usize) {
    let mut out: Vec<Stmt> = Vec::new();
    for mut s in block.stmts.drain(..) {
        let line = s.line;
        match &mut s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    if let Expr::Call(_) = e {
                        // `int x = f();` → `int x; x = f();`
                        let Expr::Call(mut call) = std::mem::replace(e, Expr::Int(0)) else {
                            unreachable!()
                        };
                        for a in &mut call.args {
                            hoist_expr(a, line, &mut out, tmp);
                        }
                        let StmtKind::Decl { name, ty, .. } = &s.kind else {
                            unreachable!()
                        };
                        let (name, ty) = (name.clone(), *ty);
                        out.push(Stmt::new(
                            line,
                            StmtKind::Decl {
                                name: name.clone(),
                                ty,
                                init: None,
                            },
                        ));
                        call.assign_to = Some(name);
                        out.push(Stmt::new(line, StmtKind::Call(*call)));
                        continue;
                    }
                    hoist_expr(e, line, &mut out, tmp);
                }
                out.push(s);
            }
            StmtKind::Assign { value, .. } => {
                hoist_expr(value, line, &mut out, tmp);
                out.push(s);
            }
            StmtKind::Call(call) => {
                for a in &mut call.args {
                    hoist_expr(a, line, &mut out, tmp);
                }
                out.push(s);
            }
            StmtKind::Printf { args, .. } => {
                for a in args.iter_mut() {
                    hoist_expr(a, line, &mut out, tmp);
                }
                out.push(s);
            }
            StmtKind::Scanf { .. } | StmtKind::Break | StmtKind::Continue => out.push(s),
            StmtKind::Exit { code } => {
                hoist_expr(code, line, &mut out, tmp);
                out.push(s);
            }
            StmtKind::Return { value } => {
                if let Some(e) = value {
                    hoist_expr(e, line, &mut out, tmp);
                }
                out.push(s);
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                hoist_expr(cond, line, &mut out, tmp);
                hoist_block(then_block, tmp);
                if let Some(e) = else_block {
                    hoist_block(e, tmp);
                }
                out.push(s);
            }
            StmtKind::While { cond, body } => {
                hoist_block(body, tmp);
                if cond.contains_call() {
                    // while (C) B  →  while (1) { hoisted; if (!C) break; B }
                    let mut pre: Vec<Stmt> = Vec::new();
                    let mut c = std::mem::replace(cond, Expr::Int(1));
                    hoist_expr(&mut c, line, &mut pre, tmp);
                    let guard = Stmt::new(
                        line,
                        StmtKind::If {
                            cond: Expr::Unary(UnOp::Not, Box::new(c)),
                            then_block: Block {
                                stmts: vec![Stmt::new(line, StmtKind::Break)],
                            },
                            else_block: None,
                        },
                    );
                    let old_body = std::mem::take(body);
                    let mut stmts = pre;
                    stmts.push(guard);
                    stmts.extend(old_body.stmts);
                    *body = Block { stmts };
                }
                out.push(s);
            }
        }
    }
    block.stmts = out;
}

fn resolve_expr(e: &mut Expr, fns: &HashSet<String>) {
    match e {
        Expr::Int(_) | Expr::FuncRef(_) => {}
        Expr::Var(v) => {
            if fns.contains(v) {
                let name = v.clone();
                *e = Expr::FuncRef(name);
            }
        }
        Expr::Unary(_, inner) => resolve_expr(inner, fns),
        Expr::Binary(_, a, b) => {
            resolve_expr(a, fns);
            resolve_expr(b, fns);
        }
        Expr::Call(c) => resolve_call(c, fns),
    }
}

fn resolve_call(c: &mut CallStmt, fns: &HashSet<String>) {
    if let Callee::Named(n) = &c.callee {
        if !fns.contains(n) {
            c.callee = Callee::Indirect(n.clone());
        }
    }
    for a in &mut c.args {
        resolve_expr(a, fns);
    }
}

fn resolve_block(block: &mut Block, fns: &HashSet<String>) {
    block.visit_mut(&mut |s| match &mut s.kind {
        StmtKind::Decl { init: Some(e), .. } => resolve_expr(e, fns),
        StmtKind::Assign { value, .. } => resolve_expr(value, fns),
        StmtKind::Call(c) => resolve_call(c, fns),
        StmtKind::Printf { args, .. } => {
            for a in args {
                resolve_expr(a, fns);
            }
        }
        StmtKind::Exit { code } => resolve_expr(code, fns),
        StmtKind::If { cond, .. } => resolve_expr(cond, fns),
        StmtKind::While { cond, .. } => resolve_expr(cond, fns),
        StmtKind::Return { value: Some(e) } => resolve_expr(e, fns),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn norm(src: &str) -> Program {
        normalize(parse(src).unwrap())
    }

    /// Collects all statements of a function as a flat list.
    fn stmts(p: &Program, f: &str) -> Vec<StmtKind> {
        let mut out = Vec::new();
        p.function(f)
            .unwrap()
            .body
            .visit(&mut |s| out.push(s.kind.clone()));
        out
    }

    #[test]
    fn no_calls_remain_in_expressions() {
        let p = norm(
            "int add(int a, int b) { return a + b; }
             int main() { int x; x = add(add(1,2), add(3,4)) + 5; return x; }",
        );
        p.visit_all(|_, s| {
            let check = |e: &Expr| assert!(!e.contains_call(), "call left in expr: {e:?}");
            match &s.kind {
                StmtKind::Assign { value, .. } => check(value),
                StmtKind::Call(c) => c.args.iter().for_each(check),
                StmtKind::Return { value: Some(e) } => check(e),
                StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => check(cond),
                _ => {}
            }
        });
        // Two inner calls hoisted, outer call became a Call stmt at parse time.
        let m = stmts(&p, "main");
        let call_count = m.iter().filter(|k| matches!(k, StmtKind::Call(_))).count();
        assert_eq!(call_count, 3);
    }

    #[test]
    fn while_condition_call_is_reevaluated() {
        let p = norm(
            "int dec(int a) { return a - 1; }
             int main() { int x; x = 3; while (dec(x) > 0) { x = x - 1; } return x; }",
        );
        let m = stmts(&p, "main");
        // The while loop now has constant condition 1 and a guarded break.
        let found = m
            .iter()
            .any(|k| matches!(k, StmtKind::While { cond, .. } if matches!(cond, Expr::Int(1))));
        assert!(found, "while not rewritten: {m:?}");
        let has_break_guard = m.iter().any(
            |k| matches!(k, StmtKind::If { cond, .. } if matches!(cond, Expr::Unary(UnOp::Not, _))),
        );
        assert!(has_break_guard);
    }

    #[test]
    fn callee_resolution() {
        let p = norm(
            "int f(int a, int b) { return a; }
             int main() {
                int (*p)(int, int);
                int x;
                p = f;
                x = p(1, 2);
                return x;
             }",
        );
        let m = stmts(&p, "main");
        assert!(m.iter().any(|k| matches!(
            k,
            StmtKind::Assign { value: Expr::FuncRef(n), .. } if n == "f"
        )));
        assert!(m.iter().any(|k| matches!(
            k,
            StmtKind::Call(c) if c.callee == Callee::Indirect("p".into())
        )));
    }

    #[test]
    fn decl_with_call_init_is_split() {
        let p = norm("int f() { return 1; } int main() { int x = f(); return x; }");
        let m = stmts(&p, "main");
        assert!(matches!(&m[0], StmtKind::Decl { init: None, .. }));
        assert!(matches!(&m[1], StmtKind::Call(c) if c.assign_to.as_deref() == Some("x")));
    }

    #[test]
    fn ids_are_dense_after_normalize() {
        let p = norm("int main() { int x; x = 1; if (x) { x = 2; } return x; }");
        let mut ids = Vec::new();
        p.visit_all(|_, s| ids.push(s.id.0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..ids.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn idempotent() {
        let p = norm(
            "int f(int a) { return a; }
             int main() { int x; x = f(f(2)); return x; }",
        );
        let again = normalize(p.clone());
        assert_eq!(p, again);
    }
}
