//! MiniC: the small C-like language the specialization slicer operates on.
//!
//! MiniC stands in for the C + CodeSurfer/C frontend used by the paper. It
//! covers every language feature the paper's algorithm and examples exercise:
//!
//! * global `int` variables, procedures with by-value and by-reference
//!   (`int&`) parameters, `int`/`void` returns, direct and mutual recursion;
//! * structured control flow (`if`/`else`, `while`) plus early `return`,
//!   `break`, and `continue`;
//! * library calls: `printf`, `scanf` (modeled as deterministic input), and
//!   `exit`;
//! * function pointers (`int (*p)(int,int)`), address-of-function assignment,
//!   pointer equality tests, and indirect calls — the ingredients of the
//!   paper's §6.2 transformation.
//!
//! The pipeline is: [`parse`] → [`normalize::normalize`] (hoists nested calls
//! so each call is its own statement — the granularity at which SDG call
//! vertices are created) → [`sema::check`] → the `specslice-sdg` crate.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     int g;
//!     void inc(int x) { g = g + x; }
//!     int main() { g = 0; inc(2); printf("%d", g); return 0; }
//! "#;
//! let program = specslice_lang::frontend(src)?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), specslice_lang::LangError>(())
//! ```

pub mod ast;
pub mod delta;
pub mod lexer;
pub mod normalize;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod token;

pub use ast::{Block, Callee, Expr, Function, Program, Stmt, StmtId, StmtKind};
pub use delta::{ProgramDelta, ProgramEdit};
pub use lexer::lex;
pub use parser::{parse, parse_function};
pub use pretty::pretty;

use std::fmt;

/// Errors produced by the MiniC frontend, tagged by the stage that rejected
/// the program (so downstream error types can classify without string
/// matching).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LangError {
    /// Lexical error (bad character, unterminated literal, …).
    Lex {
        /// 1-based source line (0 when unknown).
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error from the recursive-descent parser.
    Parse {
        /// 1-based source line (0 when unknown).
        line: u32,
        /// Human-readable description.
        message: String,
    },
    /// Semantic error (undeclared names, arity mismatches, aliasing, …).
    Sema {
        /// 1-based source line (0 when unknown).
        line: u32,
        /// Human-readable description.
        message: String,
    },
}

impl LangError {
    /// Creates a lexical error attached to `line`.
    pub fn lex(line: u32, message: impl Into<String>) -> Self {
        LangError::Lex {
            line,
            message: message.into(),
        }
    }

    /// Creates a syntax error attached to `line`.
    pub fn parse(line: u32, message: impl Into<String>) -> Self {
        LangError::Parse {
            line,
            message: message.into(),
        }
    }

    /// Creates a semantic error attached to `line`.
    pub fn sema(line: u32, message: impl Into<String>) -> Self {
        LangError::Sema {
            line,
            message: message.into(),
        }
    }

    /// The 1-based source line (0 when unknown).
    pub fn line(&self) -> u32 {
        match self {
            LangError::Lex { line, .. }
            | LangError::Parse { line, .. }
            | LangError::Sema { line, .. } => *line,
        }
    }

    /// The message without the line prefix.
    pub fn message(&self) -> &str {
        match self {
            LangError::Lex { message, .. }
            | LangError::Parse { message, .. }
            | LangError::Sema { message, .. } => message,
        }
    }

    /// `true` for semantic (as opposed to lexical/syntax) errors.
    pub fn is_sema(&self) -> bool {
        matches!(self, LangError::Sema { .. })
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self {
            LangError::Lex { .. } => "lex",
            LangError::Parse { .. } => "parse",
            LangError::Sema { .. } => "sema",
        };
        if self.line() == 0 {
            write!(f, "{stage} error: {}", self.message())
        } else {
            write!(f, "{stage} error: line {}: {}", self.line(), self.message())
        }
    }
}

impl std::error::Error for LangError {}

/// Convenience: parse, normalize, and semantically check a program.
///
/// This is the standard entry point used by the slicer and all tools.
///
/// # Errors
///
/// Returns the first lexing, parsing, or semantic error encountered.
pub fn frontend(src: &str) -> Result<Program, LangError> {
    let program = parse(src)?;
    let program = normalize::normalize(program);
    sema::check(&program)?;
    Ok(program)
}
