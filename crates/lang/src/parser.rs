//! Recursive-descent parser for MiniC.

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use crate::LangError;

/// Parses MiniC source into an AST.
///
/// The returned program is *not yet* normalized or checked; use
/// [`crate::frontend`] for the full pipeline.
///
/// # Errors
///
/// Returns the first syntax error with its source line.
pub fn parse(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

/// Parses exactly one function definition — the wire-facing entry point
/// for function-granular program edits (a remote client ships replacement
/// bodies as source text, not as AST values).
///
/// The returned function is *not yet* normalized or checked — it is meant
/// to ride inside a [`crate::ProgramEdit`], whose application re-runs
/// normalization and the semantic checker on the whole edited program (so
/// calls to functions defined elsewhere resolve there, not here).
///
/// # Errors
///
/// Any syntax error, plus a syntax-stage [`LangError`] when the source
/// contains anything besides a single function definition (globals, a
/// second function, or nothing at all).
pub fn parse_function(src: &str) -> Result<Function, LangError> {
    let program = parse(src)?;
    if !program.globals.is_empty() {
        return Err(LangError::Parse {
            line: 0,
            message: "expected a single function definition, found global declarations".to_string(),
        });
    }
    match <[Function; 1]>::try_from(program.functions) {
        Ok([f]) => Ok(f),
        Err(fs) => Err(LangError::Parse {
            line: 0,
            message: format!(
                "expected exactly one function definition, found {}",
                fs.len()
            ),
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Argument forms accepted syntactically; validated per-callee later.
/// The payloads of `Ref`/`Str` are kept for error reporting symmetry even
/// though only their presence is checked today.
enum PArg {
    Expr(Expr),
    #[allow(dead_code)]
    Ref(String),
    #[allow(dead_code)]
    Str(String),
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), LangError> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn error(&self, message: String) -> LangError {
        LangError::parse(self.line(), message)
    }

    // program := (global_decl | func)*
    fn program(&mut self) -> Result<Program, LangError> {
        let mut prog = Program::default();
        while self.peek() != &TokenKind::Eof {
            let ret = match self.peek() {
                TokenKind::Int => RetKind::Int,
                TokenKind::Void => RetKind::Void,
                other => {
                    return Err(self.error(format!(
                        "expected `int` or `void` at top level, found {}",
                        other.describe()
                    )))
                }
            };
            let line = self.line();
            self.bump();
            let name = self.expect_ident()?;
            if self.peek() == &TokenKind::LParen {
                // function definition
                self.bump();
                let params = self.params()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                prog.functions.push(Function {
                    name,
                    ret,
                    params,
                    body,
                    line,
                });
            } else {
                // global declaration list
                if ret == RetKind::Void {
                    return Err(self.error("global variables must have type `int`".into()));
                }
                prog.globals.push(name);
                while self.eat(&TokenKind::Comma) {
                    prog.globals.push(self.expect_ident()?);
                }
                self.expect(TokenKind::Semi)?;
            }
        }
        Ok(prog)
    }

    // param := 'int' ['&'] ident | 'int' '(' '*' ident ')' '(' type_list ')'
    fn params(&mut self) -> Result<Vec<Param>, LangError> {
        let mut params = Vec::new();
        if self.peek() == &TokenKind::RParen {
            return Ok(params);
        }
        loop {
            self.expect(TokenKind::Int)?;
            if self.eat(&TokenKind::LParen) {
                self.expect(TokenKind::Star)?;
                let name = self.expect_ident()?;
                self.expect(TokenKind::RParen)?;
                let arity = self.fnptr_type_list()?;
                params.push(Param {
                    name,
                    mode: ParamMode::FnPtr { arity },
                });
            } else if self.eat(&TokenKind::Amp) {
                let name = self.expect_ident()?;
                params.push(Param {
                    name,
                    mode: ParamMode::Ref,
                });
            } else {
                let name = self.expect_ident()?;
                params.push(Param {
                    name,
                    mode: ParamMode::Value,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(params)
    }

    // '(' ('int' (',' 'int')*)? ')' — returns the arity
    fn fnptr_type_list(&mut self) -> Result<usize, LangError> {
        self.expect(TokenKind::LParen)?;
        let mut arity = 0;
        if self.peek() != &TokenKind::RParen {
            loop {
                self.expect(TokenKind::Int)?;
                arity += 1;
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(arity)
    }

    fn block(&mut self) -> Result<Block, LangError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(self.error("unexpected end of input inside block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, LangError> {
        let line = self.line();
        match self.peek().clone() {
            TokenKind::Int => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    // int (*p)(int, int);
                    self.expect(TokenKind::Star)?;
                    let name = self.expect_ident()?;
                    self.expect(TokenKind::RParen)?;
                    let arity = self.fnptr_type_list()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::new(
                        line,
                        StmtKind::Decl {
                            name,
                            ty: Type::FnPtr { arity },
                            init: None,
                        },
                    ))
                } else {
                    let name = self.expect_ident()?;
                    let init = if self.eat(&TokenKind::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt::new(
                        line,
                        StmtKind::Decl {
                            name,
                            ty: Type::Int,
                            init,
                        },
                    ))
                }
            }
            TokenKind::If => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_block = self.block()?;
                let else_block = if self.eat(&TokenKind::Else) {
                    if self.peek() == &TokenKind::If {
                        // `else if` chain: wrap the nested if in a block
                        let nested = self.stmt()?;
                        Some(Block {
                            stmts: vec![nested],
                        })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::new(
                    line,
                    StmtKind::If {
                        cond,
                        then_block,
                        else_block,
                    },
                ))
            }
            TokenKind::While => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::new(line, StmtKind::While { cond, body }))
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(line, StmtKind::Return { value }))
            }
            TokenKind::Break => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(line, StmtKind::Break))
            }
            TokenKind::Continue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::new(line, StmtKind::Continue))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::Assign) {
                    // x = expr ; — but `x = f(args);` keeps the call at top
                    // level, and `x = scanf(...)` becomes a Scanf statement.
                    if let TokenKind::Ident(callee) = self.peek().clone() {
                        if self.peek2() == &TokenKind::LParen && callee == "scanf" {
                            self.bump();
                            self.bump();
                            let stmt = self.finish_scanf(line, Some(name))?;
                            return Ok(stmt);
                        }
                    }
                    let value = self.expr()?;
                    self.expect(TokenKind::Semi)?;
                    // Lift a top-level call into a Call statement so that
                    // `x = f(a)` has call granularity even before normalize.
                    if let Expr::Call(call) = value {
                        let mut call = *call;
                        call.assign_to = Some(name);
                        Ok(Stmt::new(line, StmtKind::Call(call)))
                    } else {
                        Ok(Stmt::new(line, StmtKind::Assign { name, value }))
                    }
                } else if self.eat(&TokenKind::LParen) {
                    match name.as_str() {
                        "printf" => self.finish_printf(line),
                        "scanf" => self.finish_scanf(line, None),
                        "exit" => {
                            let code = self.expr()?;
                            self.expect(TokenKind::RParen)?;
                            self.expect(TokenKind::Semi)?;
                            Ok(Stmt::new(line, StmtKind::Exit { code }))
                        }
                        _ => {
                            let args = self.call_args()?;
                            self.expect(TokenKind::Semi)?;
                            let args = exprs_only(args, line)?;
                            Ok(Stmt::new(
                                line,
                                StmtKind::Call(CallStmt {
                                    callee: Callee::Named(name),
                                    args,
                                    assign_to: None,
                                }),
                            ))
                        }
                    }
                } else {
                    Err(self.error(format!("expected `=` or `(` after identifier `{name}`")))
                }
            }
            other => Err(self.error(format!(
                "unexpected {} at start of statement",
                other.describe()
            ))),
        }
    }

    // printf '(' string (',' expr)* ')' ';'   (opening paren consumed)
    fn finish_printf(&mut self, line: u32) -> Result<Stmt, LangError> {
        let format = match self.bump() {
            TokenKind::Str(s) => s,
            other => {
                return Err(self.error(format!(
                    "printf needs a format string, found {}",
                    other.describe()
                )))
            }
        };
        let mut args = Vec::new();
        while self.eat(&TokenKind::Comma) {
            args.push(self.expr()?);
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::new(line, StmtKind::Printf { format, args }))
    }

    // scanf '(' string (',' '&' ident)* ')' ';'   (opening paren consumed)
    fn finish_scanf(&mut self, line: u32, assign_to: Option<String>) -> Result<Stmt, LangError> {
        let format = match self.bump() {
            TokenKind::Str(s) => s,
            other => {
                return Err(self.error(format!(
                    "scanf needs a format string, found {}",
                    other.describe()
                )))
            }
        };
        let mut targets = Vec::new();
        while self.eat(&TokenKind::Comma) {
            self.expect(TokenKind::Amp)?;
            targets.push(self.expect_ident()?);
        }
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::Semi)?;
        Ok(Stmt::new(
            line,
            StmtKind::Scanf {
                format,
                targets,
                assign_to,
            },
        ))
    }

    // args := ε | arg (',' arg)* — caller consumed '(' ; consumes ')'
    fn call_args(&mut self) -> Result<Vec<PArg>, LangError> {
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                if self.eat(&TokenKind::Amp) {
                    args.push(PArg::Ref(self.expect_ident()?));
                } else if let TokenKind::Str(_) = self.peek() {
                    if let TokenKind::Str(s) = self.bump() {
                        args.push(PArg::Str(s));
                    }
                } else {
                    args.push(PArg::Expr(self.expr()?));
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        Ok(args)
    }

    // Precedence climbing.
    fn expr(&mut self) -> Result<Expr, LangError> {
        self.binary_expr(0)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, LangError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::PipePipe => (BinOp::Or, 1),
                TokenKind::AmpAmp => (BinOp::And, 2),
                TokenKind::Eq => (BinOp::Eq, 3),
                TokenKind::Ne => (BinOp::Ne, 3),
                TokenKind::Lt => (BinOp::Lt, 4),
                TokenKind::Le => (BinOp::Le, 4),
                TokenKind::Gt => (BinOp::Gt, 4),
                TokenKind::Ge => (BinOp::Ge, 4),
                TokenKind::Plus => (BinOp::Add, 5),
                TokenKind::Minus => (BinOp::Sub, 5),
                TokenKind::Star => (BinOp::Mul, 6),
                TokenKind::Slash => (BinOp::Div, 6),
                TokenKind::Percent => (BinOp::Rem, 6),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, LangError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Number(n) => Ok(Expr::Int(n)),
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::LParen {
                    self.bump();
                    let args = self.call_args()?;
                    let args = exprs_only(args, line)?;
                    Ok(Expr::Call(Box::new(CallStmt {
                        callee: Callee::Named(name),
                        args,
                        assign_to: None,
                    })))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => Err(LangError::parse(
                line,
                format!("expected expression, found {}", other.describe()),
            )),
        }
    }
}

fn exprs_only(args: Vec<PArg>, line: u32) -> Result<Vec<Expr>, LangError> {
    args.into_iter()
        .map(|a| match a {
            PArg::Expr(e) => Ok(e),
            PArg::Ref(_) => Err(LangError::parse(
                line,
                "`&` arguments are only allowed in scanf".to_string(),
            )),
            PArg::Str(_) => Err(LangError::parse(
                line,
                "string arguments are only allowed as printf/scanf formats".to_string(),
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig1_program() {
        let src = r#"
            int g1, g2, g3;
            void p(int a, int b) {
                g1 = a;
                g2 = b;
                g3 = g2;
            }
            int main() {
                g2 = 100;
                p(g2, 2);
                p(g2, 3);
                p(4, g1+g2);
                printf("%d", g2);
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.globals, vec!["g1", "g2", "g3"]);
        assert_eq!(prog.functions.len(), 2);
        assert_eq!(prog.functions[0].name, "p");
        assert_eq!(prog.functions[0].params.len(), 2);
        assert_eq!(prog.functions[1].body.stmts.len(), 5);
    }

    #[test]
    fn parses_ref_params_and_fnptr() {
        let src = r#"
            void tally(int& sum, int N) { sum = sum + N; }
            int main() {
                int (*p)(int, int);
                int s;
                s = 0;
                tally(s, 10);
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.functions[0].params[0].mode, ParamMode::Ref);
        assert_eq!(prog.functions[0].params[1].mode, ParamMode::Value);
        match &prog.functions[1].body.stmts[0].kind {
            StmtKind::Decl { ty, .. } => assert_eq!(*ty, Type::FnPtr { arity: 2 }),
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn fnptr_param_parses() {
        let src = "int indirect(int (*p)(int, int), int a, int b) { return a; }";
        let prog = parse(src).unwrap();
        assert_eq!(
            prog.functions[0].params[0].mode,
            ParamMode::FnPtr { arity: 2 }
        );
    }

    #[test]
    fn call_assignment_becomes_call_stmt() {
        let src = "int f() { return 1; } int main() { int x; x = f(); return x; }";
        let prog = parse(src).unwrap();
        match &prog.functions[1].body.stmts[1].kind {
            StmtKind::Call(c) => {
                assert_eq!(c.assign_to.as_deref(), Some("x"));
                assert_eq!(c.callee, Callee::Named("f".into()));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn scanf_forms() {
        let src = r#"
            int main() {
                int v;
                scanf("%d", &v);
                v = scanf("%d", &v);
                return v;
            }
        "#;
        let prog = parse(src).unwrap();
        match &prog.functions[0].body.stmts[1].kind {
            StmtKind::Scanf {
                targets, assign_to, ..
            } => {
                assert_eq!(targets, &vec!["v".to_string()]);
                assert!(assign_to.is_none());
            }
            other => panic!("{other:?}"),
        }
        match &prog.functions[0].body.stmts[2].kind {
            StmtKind::Scanf { assign_to, .. } => {
                assert_eq!(assign_to.as_deref(), Some("v"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn else_if_chain() {
        let src = r#"
            int main() {
                int v;
                v = 1;
                if (v == 1) { v = 2; }
                else if (v == 2) { v = 3; }
                else { v = 4; }
                return v;
            }
        "#;
        let prog = parse(src).unwrap();
        match &prog.functions[0].body.stmts[2].kind {
            StmtKind::If { else_block, .. } => {
                let inner = &else_block.as_ref().unwrap().stmts[0];
                assert!(matches!(inner.kind, StmtKind::If { .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let src = "int main() { int x; x = 1 + 2 * 3 < 4 && 5 == 6; return x; }";
        let prog = parse(src).unwrap();
        match &prog.functions[0].body.stmts[1].kind {
            StmtKind::Assign { value, .. } => {
                // top must be &&
                assert!(matches!(value, Expr::Binary(BinOp::And, _, _)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn exit_and_break_continue() {
        let src = r#"
            int main() {
                while (1) { break; }
                while (0) { continue; }
                exit(3);
            }
        "#;
        let prog = parse(src).unwrap();
        assert!(matches!(
            prog.functions[0].body.stmts[2].kind,
            StmtKind::Exit { .. }
        ));
    }

    #[test]
    fn error_messages_carry_lines() {
        let err = parse("int main() {\n  x 5;\n}").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn rejects_stray_amp_arg() {
        assert!(parse("void f(int a) {} int main() { int v; f(&v); }").is_err());
    }

    #[test]
    fn nested_call_in_expression_parses() {
        let src = "int add(int a, int b) { return a + b; } int main() { int x; x = add(add(1,2), 3); return x; }";
        let prog = parse(src).unwrap();
        match &prog.functions[1].body.stmts[1].kind {
            StmtKind::Call(c) => assert!(c.args[0].contains_call()),
            other => panic!("{other:?}"),
        }
    }
}
