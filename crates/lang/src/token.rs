//! Token definitions for the MiniC lexer.

use std::fmt;

/// A lexical token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The kinds of MiniC tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    // Keywords
    Int,
    Void,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,

    /// Identifier (variable, parameter, or function name).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// String literal (contents, without quotes; escapes resolved).
    Str(String),

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Amp,      // &
    AmpAmp,   // &&
    PipePipe, // ||
    Bang,     // !
    Assign,   // =
    Eq,       // ==
    Ne,       // !=
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,

    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Str(_) => "string literal".to_string(),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::Int => "int",
            TokenKind::Void => "void",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::While => "while",
            TokenKind::Return => "return",
            TokenKind::Break => "break",
            TokenKind::Continue => "continue",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            TokenKind::Amp => "&",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Bang => "!",
            TokenKind::Assign => "=",
            TokenKind::Eq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            _ => unreachable!("symbol() called on literal token"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}
