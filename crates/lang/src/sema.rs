//! Semantic checks for normalized MiniC programs.
//!
//! The dependence-graph layer identifies variables *by name* within a
//! procedure, so the checker enforces a discipline that makes that sound:
//! flat function scopes, no shadowing of globals or functions, and no
//! aliasing between by-reference actuals and globals (the paper's
//! `MayRef`/`MayMod` formulation makes the same no-alias assumption).

use crate::ast::*;
use crate::LangError;
use std::collections::HashMap;

/// Per-function signature used for call checking.
#[derive(Clone, Debug)]
pub struct Signature {
    /// Return kind.
    pub ret: RetKind,
    /// Parameter modes in order.
    pub params: Vec<ParamMode>,
}

/// Checks a *normalized* program (see [`crate::normalize::normalize`]).
///
/// # Errors
///
/// Returns the first semantic error found: duplicate/missing declarations,
/// shadowing, type errors, call-shape errors (arity, by-ref actuals, function
/// pointers), `break`/`continue` outside loops, missing `main`, or aliasing
/// hazards (globals passed by reference).
pub fn check(program: &Program) -> Result<(), LangError> {
    let mut checker = Checker::new(program)?;
    for f in &program.functions {
        checker.check_function(f)?;
    }
    if program.main().is_none() {
        return Err(LangError::sema(0, "program has no `main` function"));
    }
    Ok(())
}

/// Collects the signatures of all functions (usable independently of
/// [`check`], e.g. by the SDG builder).
pub fn signatures(program: &Program) -> HashMap<String, Signature> {
    program
        .functions
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                Signature {
                    ret: f.ret,
                    params: f.params.iter().map(|p| p.mode).collect(),
                },
            )
        })
        .collect()
}

struct Checker<'p> {
    program: &'p Program,
    sigs: HashMap<String, Signature>,
}

/// Variable environment of one function: name → type.
type Env = HashMap<String, Type>;

impl<'p> Checker<'p> {
    fn new(program: &'p Program) -> Result<Self, LangError> {
        let mut seen = HashMap::new();
        for f in &program.functions {
            if seen.insert(f.name.clone(), ()).is_some() {
                return Err(LangError::sema(
                    f.line,
                    format!("duplicate function `{}`", f.name),
                ));
            }
            if matches!(f.name.as_str(), "printf" | "scanf" | "exit") {
                return Err(LangError::sema(
                    f.line,
                    format!("`{}` is a reserved library procedure", f.name),
                ));
            }
        }
        let mut gseen = HashMap::new();
        for g in &program.globals {
            if gseen.insert(g.clone(), ()).is_some() {
                return Err(LangError::sema(0, format!("duplicate global `{g}`")));
            }
            if seen.contains_key(g) {
                return Err(LangError::sema(
                    0,
                    format!("global `{g}` has the same name as a function"),
                ));
            }
        }
        Ok(Checker {
            program,
            sigs: signatures(program),
        })
    }

    fn check_function(&mut self, f: &Function) -> Result<(), LangError> {
        let mut env: Env = Env::new();
        for p in &f.params {
            self.check_fresh_name(&p.name, f.line, &env)?;
            let ty = match p.mode {
                ParamMode::Value | ParamMode::Ref => Type::Int,
                ParamMode::FnPtr { arity } => Type::FnPtr { arity },
            };
            env.insert(p.name.clone(), ty);
        }
        // Flat function scope: pre-collect all local declarations.
        let mut decl_err: Option<LangError> = None;
        f.body.visit(&mut |s| {
            if decl_err.is_some() {
                return;
            }
            if let StmtKind::Decl { name, ty, .. } = &s.kind {
                if let Err(e) = self.check_fresh_name(name, s.line, &env) {
                    decl_err = Some(e);
                    return;
                }
                if env.insert(name.clone(), *ty).is_some() {
                    decl_err = Some(LangError::sema(
                        s.line,
                        format!("duplicate local `{name}` in `{}`", f.name),
                    ));
                }
            }
        });
        if let Some(e) = decl_err {
            return Err(e);
        }
        self.check_block(&f.body, f, &env, 0)
    }

    fn check_fresh_name(&self, name: &str, line: u32, env: &Env) -> Result<(), LangError> {
        if self.sigs.contains_key(name) {
            return Err(LangError::sema(
                line,
                format!("`{name}` shadows a function name"),
            ));
        }
        if self.program.is_global(name) {
            return Err(LangError::sema(
                line,
                format!("`{name}` shadows a global variable"),
            ));
        }
        if env.contains_key(name) {
            return Err(LangError::sema(line, format!("duplicate name `{name}`")));
        }
        Ok(())
    }

    fn var_type(&self, name: &str, env: &Env, line: u32) -> Result<Type, LangError> {
        if let Some(t) = env.get(name) {
            return Ok(*t);
        }
        if self.program.is_global(name) {
            return Ok(Type::Int);
        }
        Err(LangError::sema(
            line,
            format!("undeclared variable `{name}`"),
        ))
    }

    fn expr_type(&self, e: &Expr, env: &Env, line: u32) -> Result<Type, LangError> {
        match e {
            Expr::Int(_) => Ok(Type::Int),
            Expr::Var(v) => self.var_type(v, env, line),
            Expr::FuncRef(f) => {
                let sig = self
                    .sigs
                    .get(f)
                    .ok_or_else(|| LangError::sema(line, format!("unknown function `{f}`")))?;
                if sig.ret != RetKind::Int || sig.params.iter().any(|m| *m != ParamMode::Value) {
                    return Err(LangError::sema(
                        line,
                        format!(
                            "cannot take the address of `{f}`: only `int` functions \
                             with by-value `int` parameters can be pointed to"
                        ),
                    ));
                }
                Ok(Type::FnPtr {
                    arity: sig.params.len(),
                })
            }
            Expr::Unary(_, inner) => {
                self.expect_int(inner, env, line)?;
                Ok(Type::Int)
            }
            Expr::Binary(op, a, b) => {
                let ta = self.expr_type(a, env, line)?;
                let tb = self.expr_type(b, env, line)?;
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        if ta != tb {
                            return Err(LangError::sema(
                                line,
                                "comparison between incompatible types".to_string(),
                            ));
                        }
                        Ok(Type::Int)
                    }
                    _ => {
                        if ta != Type::Int || tb != Type::Int {
                            return Err(LangError::sema(
                                line,
                                format!("operator `{}` requires int operands", op.symbol()),
                            ));
                        }
                        Ok(Type::Int)
                    }
                }
            }
            Expr::Call(_) => Err(LangError::sema(
                line,
                "internal: call in expression position after normalization".to_string(),
            )),
        }
    }

    fn expect_int(&self, e: &Expr, env: &Env, line: u32) -> Result<(), LangError> {
        if self.expr_type(e, env, line)? != Type::Int {
            return Err(LangError::sema(
                line,
                "expected an int expression".to_string(),
            ));
        }
        Ok(())
    }

    fn check_block(
        &self,
        b: &Block,
        f: &Function,
        env: &Env,
        loop_depth: usize,
    ) -> Result<(), LangError> {
        for s in &b.stmts {
            self.check_stmt(s, f, env, loop_depth)?;
        }
        Ok(())
    }

    fn check_stmt(
        &self,
        s: &Stmt,
        f: &Function,
        env: &Env,
        loop_depth: usize,
    ) -> Result<(), LangError> {
        let line = s.line;
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if let Some(e) = init {
                    let t = self.expr_type(e, env, line)?;
                    if t != *ty {
                        return Err(LangError::sema(
                            line,
                            format!("initializer type mismatch for `{name}`"),
                        ));
                    }
                }
                Ok(())
            }
            StmtKind::Assign { name, value } => {
                let tv = self.var_type(name, env, line)?;
                let te = self.expr_type(value, env, line)?;
                if tv != te {
                    return Err(LangError::sema(
                        line,
                        format!("assignment type mismatch for `{name}`"),
                    ));
                }
                Ok(())
            }
            StmtKind::Call(c) => self.check_call(c, env, line),
            StmtKind::Printf { args, .. } => {
                for a in args {
                    self.expect_int(a, env, line)?;
                }
                Ok(())
            }
            StmtKind::Scanf {
                targets, assign_to, ..
            } => {
                for t in targets {
                    if self.var_type(t, env, line)? != Type::Int {
                        return Err(LangError::sema(
                            line,
                            format!("scanf target `{t}` must be int"),
                        ));
                    }
                }
                if let Some(t) = assign_to {
                    if self.var_type(t, env, line)? != Type::Int {
                        return Err(LangError::sema(
                            line,
                            format!("scanf result target `{t}` must be int"),
                        ));
                    }
                }
                Ok(())
            }
            StmtKind::Exit { code } => self.expect_int(code, env, line),
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                self.expect_int(cond, env, line)?;
                self.check_block(then_block, f, env, loop_depth)?;
                if let Some(e) = else_block {
                    self.check_block(e, f, env, loop_depth)?;
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                self.expect_int(cond, env, line)?;
                self.check_block(body, f, env, loop_depth + 1)
            }
            StmtKind::Return { value } => match (f.ret, value) {
                (RetKind::Void, Some(_)) => Err(LangError::sema(
                    line,
                    format!("`{}` is void but returns a value", f.name),
                )),
                (_, Some(e)) => self.expect_int(e, env, line),
                (_, None) => Ok(()),
            },
            StmtKind::Break => {
                if loop_depth == 0 {
                    Err(LangError::sema(
                        line,
                        "`break` outside of a loop".to_string(),
                    ))
                } else {
                    Ok(())
                }
            }
            StmtKind::Continue => {
                if loop_depth == 0 {
                    Err(LangError::sema(
                        line,
                        "`continue` outside of a loop".to_string(),
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    fn check_call(&self, c: &CallStmt, env: &Env, line: u32) -> Result<(), LangError> {
        match &c.callee {
            Callee::Named(name) => {
                if name == "main" {
                    return Err(LangError::sema(line, "calling `main` is not allowed"));
                }
                let sig = self
                    .sigs
                    .get(name)
                    .ok_or_else(|| LangError::sema(line, format!("unknown function `{name}`")))?;
                if sig.params.len() != c.args.len() {
                    return Err(LangError::sema(
                        line,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            c.args.len()
                        ),
                    ));
                }
                let mut ref_actuals: Vec<&str> = Vec::new();
                for (mode, arg) in sig.params.iter().zip(&c.args) {
                    match mode {
                        ParamMode::Value => self.expect_int(arg, env, line)?,
                        ParamMode::Ref => match arg {
                            Expr::Var(v) => {
                                if self.var_type(v, env, line)? != Type::Int {
                                    return Err(LangError::sema(
                                        line,
                                        format!("by-ref actual `{v}` must be int"),
                                    ));
                                }
                                if self.program.is_global(v) {
                                    return Err(LangError::sema(
                                        line,
                                        format!(
                                            "global `{v}` passed by reference to `{name}` \
                                             (would alias; not supported)"
                                        ),
                                    ));
                                }
                                if ref_actuals.contains(&v.as_str()) {
                                    return Err(LangError::sema(
                                        line,
                                        format!(
                                            "`{v}` passed by reference twice in one call \
                                             (would alias; not supported)"
                                        ),
                                    ));
                                }
                                ref_actuals.push(v);
                            }
                            _ => {
                                return Err(LangError::sema(
                                    line,
                                    format!("by-ref argument of `{name}` must be a variable"),
                                ))
                            }
                        },
                        ParamMode::FnPtr { arity } => match self.expr_type(arg, env, line)? {
                            Type::FnPtr { arity: a } if a == *arity => {}
                            _ => {
                                return Err(LangError::sema(
                                    line,
                                    format!(
                                        "argument of `{name}` must be a function \
                                             pointer of arity {arity}"
                                    ),
                                ))
                            }
                        },
                    }
                }
                if let Some(t) = &c.assign_to {
                    if sig.ret != RetKind::Int {
                        return Err(LangError::sema(
                            line,
                            format!("void function `{name}` used as a value"),
                        ));
                    }
                    if self.var_type(t, env, line)? != Type::Int {
                        return Err(LangError::sema(
                            line,
                            format!("call result target `{t}` must be int"),
                        ));
                    }
                }
                Ok(())
            }
            Callee::Indirect(v) => {
                let arity = match self.var_type(v, env, line)? {
                    Type::FnPtr { arity } => arity,
                    _ => {
                        return Err(LangError::sema(
                            line,
                            format!("`{v}` is not a function pointer"),
                        ))
                    }
                };
                if arity != c.args.len() {
                    return Err(LangError::sema(
                        line,
                        format!(
                            "indirect call through `{v}` expects {arity} argument(s), got {}",
                            c.args.len()
                        ),
                    ));
                }
                for a in &c.args {
                    self.expect_int(a, env, line)?;
                }
                if let Some(t) = &c.assign_to {
                    if self.var_type(t, env, line)? != Type::Int {
                        return Err(LangError::sema(
                            line,
                            format!("call result target `{t}` must be int"),
                        ));
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::parse;

    fn sema(src: &str) -> Result<(), LangError> {
        check(&normalize(parse(src).unwrap()))
    }

    #[test]
    fn accepts_well_formed_program() {
        sema(
            r#"
            int g;
            int add(int a, int b) { return a + b; }
            void bump(int& x) { x = x + 1; }
            int main() {
                int v;
                v = add(1, 2);
                bump(v);
                g = v;
                printf("%d", g);
                return 0;
            }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_undeclared_variable() {
        let e = sema("int main() { x = 1; return 0; }").unwrap_err();
        assert!(e.message().contains("undeclared"), "{e}");
    }

    #[test]
    fn rejects_missing_main() {
        let e = sema("int f() { return 1; }").unwrap_err();
        assert!(e.message().contains("main"), "{e}");
    }

    #[test]
    fn rejects_arity_mismatch() {
        let e = sema("void f(int a) {} int main() { f(1, 2); return 0; }").unwrap_err();
        assert!(e.message().contains("argument"), "{e}");
    }

    #[test]
    fn rejects_global_shadowing() {
        let e = sema("int g; int main() { int g; return 0; }").unwrap_err();
        assert!(e.message().contains("shadows"), "{e}");
    }

    #[test]
    fn rejects_global_by_ref() {
        let e =
            sema("int g; void f(int& x) { x = 1; } int main() { f(g); return 0; }").unwrap_err();
        assert!(e.message().contains("alias"), "{e}");
    }

    #[test]
    fn rejects_duplicate_ref_actual() {
        let e = sema("void f(int& x, int& y) { x = y; } int main() { int v; f(v, v); return 0; }")
            .unwrap_err();
        assert!(e.message().contains("alias"), "{e}");
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = sema("int main() { break; return 0; }").unwrap_err();
        assert!(e.message().contains("break"), "{e}");
    }

    #[test]
    fn rejects_void_value_use() {
        let e = sema("void f() {} int main() { int x; x = f(); return 0; }").unwrap_err();
        assert!(e.message().contains("void"), "{e}");
    }

    #[test]
    fn rejects_ref_actual_that_is_expression() {
        let e = sema("void f(int& x) { x = 1; } int main() { f(1 + 2); return 0; }").unwrap_err();
        assert!(e.message().contains("variable"), "{e}");
    }

    #[test]
    fn fnptr_flow_checks() {
        sema(
            r#"
            int f(int a, int b) { return a + b; }
            int main() {
                int (*p)(int, int);
                int x;
                p = f;
                x = p(1, 2);
                return x;
            }
            "#,
        )
        .unwrap();
        let e = sema(
            r#"
            int f(int a, int b) { return a; }
            int main() {
                int (*p)(int, int);
                int x;
                p = f;
                x = p(1);
                return x;
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message().contains("argument"), "{e}");
    }

    #[test]
    fn rejects_address_of_ref_param_function() {
        let e = sema(
            r#"
            int f(int& a) { a = 1; return a; }
            int main() {
                int (*p)(int);
                p = f;
                return 0;
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message().contains("address"), "{e}");
    }

    #[test]
    fn rejects_return_value_in_void() {
        let e = sema("void f() { return 1; } int main() { f(); return 0; }").unwrap_err();
        assert!(e.message().contains("void"), "{e}");
    }

    #[test]
    fn allows_int_function_without_return() {
        // Fig. 2(a)'s `int r(int k)` has no return statement.
        sema("int r(int k) { if (k > 0) { r(k - 1); } } int main() { r(3); return 0; }").unwrap();
    }

    #[test]
    fn fnptr_comparison_types() {
        sema(
            r#"
            int f(int a) { return a; }
            int g(int a) { return a; }
            int main() {
                int (*p)(int);
                p = f;
                if (p == g) { return 1; }
                return 0;
            }
            "#,
        )
        .unwrap();
        let e = sema(
            r#"
            int f(int a) { return a; }
            int main() {
                int (*p)(int);
                p = f;
                if (p == 3) { return 1; }
                return 0;
            }
            "#,
        )
        .unwrap_err();
        assert!(e.message().contains("incompatible"), "{e}");
    }
}
