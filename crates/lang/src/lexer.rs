//! Hand-written lexer for MiniC.

use crate::token::{Token, TokenKind};
use crate::LangError;

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// Supports `//` line comments and `/* ... */` block comments.
///
/// # Errors
///
/// Returns an error on unterminated strings/comments and unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($kind:expr) => {
            tokens.push(Token { kind: $kind, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LangError::lex(start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LangError::lex(start_line, "unterminated string literal"));
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            let esc = bytes[i + 1];
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'0' => '\0',
                                other => {
                                    return Err(LangError::lex(
                                        line,
                                        format!("unknown escape `\\{}`", other as char),
                                    ))
                                }
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LangError::lex(start_line, "newline in string literal"))
                        }
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                push!(TokenKind::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    LangError::lex(line, format!("integer literal `{text}` too large"))
                })?;
                push!(TokenKind::Number(value));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                push!(match word {
                    "int" => TokenKind::Int,
                    "void" => TokenKind::Void,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "return" => TokenKind::Return,
                    "break" => TokenKind::Break,
                    "continue" => TokenKind::Continue,
                    _ => TokenKind::Ident(word.to_string()),
                });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (kind, len) = match two {
                    "&&" => (TokenKind::AmpAmp, 2),
                    "||" => (TokenKind::PipePipe, 2),
                    "==" => (TokenKind::Eq, 2),
                    "!=" => (TokenKind::Ne, 2),
                    "<=" => (TokenKind::Le, 2),
                    ">=" => (TokenKind::Ge, 2),
                    _ => match c {
                        b'(' => (TokenKind::LParen, 1),
                        b')' => (TokenKind::RParen, 1),
                        b'{' => (TokenKind::LBrace, 1),
                        b'}' => (TokenKind::RBrace, 1),
                        b',' => (TokenKind::Comma, 1),
                        b';' => (TokenKind::Semi, 1),
                        b'&' => (TokenKind::Amp, 1),
                        b'!' => (TokenKind::Bang, 1),
                        b'=' => (TokenKind::Assign, 1),
                        b'<' => (TokenKind::Lt, 1),
                        b'>' => (TokenKind::Gt, 1),
                        b'+' => (TokenKind::Plus, 1),
                        b'-' => (TokenKind::Minus, 1),
                        b'*' => (TokenKind::Star, 1),
                        b'/' => (TokenKind::Slash, 1),
                        b'%' => (TokenKind::Percent, 1),
                        other => {
                            return Err(LangError::lex(
                                line,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    },
                };
                push!(kind);
                i += len;
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let ks = kinds("int foo while whilex");
        assert_eq!(
            ks,
            vec![
                TokenKind::Int,
                TokenKind::Ident("foo".into()),
                TokenKind::While,
                TokenKind::Ident("whilex".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_operators() {
        let ks = kinds("x = 10 + 2 * -3;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Number(10),
                TokenKind::Plus,
                TokenKind::Number(2),
                TokenKind::Star,
                TokenKind::Minus,
                TokenKind::Number(3),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        let ks = kinds("<= >= == != && || < >");
        assert_eq!(
            ks,
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#""%d\n""#);
        assert_eq!(ks, vec![TokenKind::Str("%d\n".into()), TokenKind::Eof]);
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = lex("// c1\nx /* c2\nc2 */ y").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 2);
        assert_eq!(toks[1].kind, TokenKind::Ident("y".into()));
        assert_eq!(toks[1].line, 3);
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn error_on_unknown_char() {
        assert!(lex("x @ y").is_err());
    }

    #[test]
    fn ampersand_single_vs_double() {
        let ks = kinds("&x && y");
        assert_eq!(
            ks,
            vec![
                TokenKind::Amp,
                TokenKind::Ident("x".into()),
                TokenKind::AmpAmp,
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }
}
