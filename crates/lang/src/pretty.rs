//! Pretty-printer: AST back to MiniC source text.
//!
//! Used both for corpus round-trip tests and to materialize specialization
//! slices as compilable source (the paper's Alg. 1, step 5).

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole program as MiniC source.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    pretty_program_into(program, &mut out);
    out
}

/// Renders a whole program into a caller-owned buffer. Emitters that render
/// many programs (or pre-size the buffer — e.g. the slice-regeneration
/// layer) use this to keep the output in one allocation instead of letting
/// `String` growth re-copy the text.
pub fn pretty_program_into(program: &Program, out: &mut String) {
    if !program.globals.is_empty() {
        let _ = writeln!(out, "int {};", program.globals.join(", "));
        out.push('\n');
    }
    for (i, f) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        pretty_function(f, out);
    }
}

/// Renders one function.
pub fn pretty_function(f: &Function, out: &mut String) {
    let ret = match f.ret {
        RetKind::Void => "void",
        RetKind::Int => "int",
    };
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| match p.mode {
            ParamMode::Value => format!("int {}", p.name),
            ParamMode::Ref => format!("int& {}", p.name),
            ParamMode::FnPtr { arity } => {
                format!("int (*{})({})", p.name, int_list(arity))
            }
        })
        .collect();
    let _ = writeln!(out, "{} {}({}) {{", ret, f.name, params.join(", "));
    pretty_block(&f.body, 1, out);
    out.push_str("}\n");
}

fn int_list(arity: usize) -> String {
    vec!["int"; arity].join(", ")
}

fn indent(n: usize, out: &mut String) {
    for _ in 0..n {
        out.push_str("    ");
    }
}

fn pretty_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        pretty_stmt(s, depth, out);
    }
}

fn pretty_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    match &s.kind {
        StmtKind::Decl { name, ty, init } => match ty {
            Type::Int => match init {
                Some(e) => {
                    let _ = writeln!(out, "int {} = {};", name, pretty_expr(e));
                }
                None => {
                    let _ = writeln!(out, "int {};", name);
                }
            },
            Type::FnPtr { arity } => {
                let _ = writeln!(out, "int (*{})({});", name, int_list(*arity));
            }
        },
        StmtKind::Assign { name, value } => {
            let _ = writeln!(out, "{} = {};", name, pretty_expr(value));
        }
        StmtKind::Call(c) => {
            let args: Vec<String> = c.args.iter().map(pretty_expr).collect();
            let target = match &c.assign_to {
                Some(t) => format!("{t} = "),
                None => String::new(),
            };
            let _ = writeln!(out, "{}{}({});", target, c.callee.name(), args.join(", "));
        }
        StmtKind::Printf { format, args } => {
            let mut parts = vec![format!("\"{}\"", escape(format))];
            parts.extend(args.iter().map(pretty_expr));
            let _ = writeln!(out, "printf({});", parts.join(", "));
        }
        StmtKind::Scanf {
            format,
            targets,
            assign_to,
        } => {
            let mut parts = vec![format!("\"{}\"", escape(format))];
            parts.extend(targets.iter().map(|t| format!("&{t}")));
            let target = match assign_to {
                Some(t) => format!("{t} = "),
                None => String::new(),
            };
            let _ = writeln!(out, "{}scanf({});", target, parts.join(", "));
        }
        StmtKind::Exit { code } => {
            let _ = writeln!(out, "exit({});", pretty_expr(code));
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        } => {
            let _ = writeln!(out, "if ({}) {{", pretty_expr(cond));
            pretty_block(then_block, depth + 1, out);
            indent(depth, out);
            match else_block {
                Some(e) => {
                    out.push_str("} else {\n");
                    pretty_block(e, depth + 1, out);
                    indent(depth, out);
                    out.push_str("}\n");
                }
                None => out.push_str("}\n"),
            }
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", pretty_expr(cond));
            pretty_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::Return { value } => match value {
            Some(e) => {
                let _ = writeln!(out, "return {};", pretty_expr(e));
            }
            None => out.push_str("return;\n"),
        },
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out
}

/// Renders an expression (fully parenthesizing compound subterms, which
/// round-trips to the identical AST).
pub fn pretty_expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => {
            if *n < 0 {
                format!("({n})")
            } else {
                n.to_string()
            }
        }
        Expr::Var(v) => v.clone(),
        Expr::FuncRef(f) => f.clone(),
        Expr::Unary(op, inner) => {
            let sym = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{}{}", sym, wrap(inner))
        }
        Expr::Binary(op, a, b) => {
            format!("{} {} {}", wrap(a), op.symbol(), wrap(b))
        }
        Expr::Call(c) => {
            let args: Vec<String> = c.args.iter().map(pretty_expr).collect();
            format!("{}({})", c.callee.name(), args.join(", "))
        }
    }
}

fn wrap(e: &Expr) -> String {
    match e {
        Expr::Binary(..) => format!("({})", pretty_expr(e)),
        _ => pretty_expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;
    use crate::parser::parse;

    /// Zeroes all source lines so structural comparison ignores layout.
    fn erase_lines(p: &mut crate::ast::Program) {
        for f in &mut p.functions {
            f.line = 0;
            f.body.visit_mut(&mut |s| s.line = 0);
        }
    }

    fn roundtrip(src: &str) {
        let mut p1 = normalize(parse(src).unwrap());
        let text = pretty(&p1);
        let mut p2 = normalize(parse(&text).unwrap());
        erase_lines(&mut p1);
        erase_lines(&mut p2);
        assert_eq!(p1, p2, "round-trip changed the AST:\n{text}");
    }

    #[test]
    fn roundtrip_fig1() {
        roundtrip(
            r#"
            int g1, g2, g3;
            void p(int a, int b) { g1 = a; g2 = b; g3 = g2; }
            int main() {
                g2 = 100;
                p(g2, 2);
                p(g2, 3);
                p(4, g1+g2);
                printf("%d", g2);
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            r#"
            int g;
            int main() {
                int i;
                i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { g = g + i; } else { continue; }
                    if (g > 100) { break; }
                    i = i + 1;
                }
                return g;
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_fnptr_and_library() {
        roundtrip(
            r#"
            int f(int a, int b) { return a + b; }
            int g(int a, int b) { return a; }
            int main() {
                int (*p)(int, int);
                int x;
                int v;
                v = scanf("%d", &v);
                if (v == 1) { p = f; } else { p = g; }
                x = p(1, 2);
                printf("%d\n", x);
                exit(0);
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_ref_params() {
        roundtrip(
            r#"
            void tally(int& sum, int N) { sum = sum + N; }
            int main() { int s; s = 0; tally(s, 10); printf("%d ", s); return 0; }
            "#,
        );
    }

    #[test]
    fn escape_in_formats() {
        let p = normalize(parse(r#"int main() { printf("a\n\t\"b\""); return 0; }"#).unwrap());
        roundtrip(&pretty(&p));
    }

    #[test]
    fn negative_literal_parenthesized() {
        assert_eq!(pretty_expr(&Expr::Int(-3)), "(-3)");
        let e = Expr::Binary(
            crate::ast::BinOp::Sub,
            Box::new(Expr::Int(1)),
            Box::new(Expr::Int(-3)),
        );
        // "1 - (-3)" must re-lex unambiguously.
        assert_eq!(pretty_expr(&e), "1 - (-3)");
    }
}
