//! Program deltas: first-class edits between two MiniC programs.
//!
//! Re-slicing workloads are dominated by *small* edits — a statement
//! inserted here, a procedure body tweaked there — yet a [`crate::Program`]
//! is an immutable snapshot. A [`ProgramDelta`] names the difference between
//! two snapshots as a list of [`ProgramEdit`]s, either built directly by a
//! client (an IDE buffer knows exactly what changed) or recovered after the
//! fact by [`ProgramDelta::diff`]. The `specslice` session layer consumes
//! deltas to patch its cached analyses instead of rebuilding them (see
//! `Slicer::apply_edit` in the `specslice` crate).
//!
//! [`ProgramDelta::apply`] re-runs normalization and the semantic checker on
//! the edited program, so the result is always a valid frontend output — a
//! delta can *fail* to apply (it may delete a variable that is still used),
//! but it can never produce an unchecked program.

use crate::ast::{Block, Function, Program, Stmt, StmtId};
use crate::{normalize, sema, LangError};
use std::collections::BTreeSet;

/// One edit step of a [`ProgramDelta`].
///
/// Statement-level edits address existing statements by their dense
/// [`StmtId`] (stable within the *base* program the delta applies to);
/// insertions address a position in a function's top-level block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramEdit {
    /// Declares a new global `int` variable.
    AddGlobal(String),
    /// Removes a global variable (fails to apply while still referenced).
    RemoveGlobal(String),
    /// Adds a whole new function definition.
    AddFunction(Function),
    /// Removes the function with the given name.
    RemoveFunction(String),
    /// Replaces the function of the same name with a new definition.
    ReplaceFunction(Function),
    /// Inserts a statement into `function`'s top-level block at index `at`
    /// (clamped to the block length, so `usize::MAX` appends).
    InsertStmt {
        /// Enclosing function name.
        function: String,
        /// Top-level statement index to insert before.
        at: usize,
        /// The statement to insert (fresh statements need no [`StmtId`]).
        stmt: Stmt,
    },
    /// Removes the statement with id `id` (wherever it is nested).
    RemoveStmt {
        /// Id of the statement to remove, in the base program's numbering.
        id: StmtId,
    },
    /// Replaces the statement with id `id` by `stmt`.
    ReplaceStmt {
        /// Id of the statement to replace, in the base program's numbering.
        id: StmtId,
        /// The replacement statement.
        stmt: Stmt,
    },
}

impl ProgramEdit {
    /// Builds an [`AddFunction`](ProgramEdit::AddFunction) edit from the
    /// function's source text — the wire-facing constructor: remote clients
    /// (the `specslice-server` protocol) ship function bodies as text, not
    /// as AST values.
    ///
    /// # Errors
    ///
    /// Any syntax error, or source that is not exactly one function
    /// definition (see [`crate::parser::parse_function`]).
    pub fn add_function_src(src: &str) -> Result<ProgramEdit, LangError> {
        crate::parser::parse_function(src).map(ProgramEdit::AddFunction)
    }

    /// Builds a [`ReplaceFunction`](ProgramEdit::ReplaceFunction) edit from
    /// the replacement's source text; the function of the same name in the
    /// base program is replaced when the edit applies.
    ///
    /// # Errors
    ///
    /// Any syntax error, or source that is not exactly one function
    /// definition.
    pub fn replace_function_src(src: &str) -> Result<ProgramEdit, LangError> {
        crate::parser::parse_function(src).map(ProgramEdit::ReplaceFunction)
    }
}

/// An ordered list of edits turning one program into another.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgramDelta {
    /// The edits, applied in order.
    pub edits: Vec<ProgramEdit>,
}

impl ProgramDelta {
    /// A delta with no edits (applying it re-normalizes and re-checks only).
    pub fn empty() -> ProgramDelta {
        ProgramDelta::default()
    }

    /// Builds a delta from a single edit.
    pub fn single(edit: ProgramEdit) -> ProgramDelta {
        ProgramDelta { edits: vec![edit] }
    }

    /// `true` when the delta contains no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// Computes a function-granular delta turning `old` into `new`:
    /// global additions/removals, plus one
    /// [`AddFunction`](ProgramEdit::AddFunction) /
    /// [`RemoveFunction`](ProgramEdit::RemoveFunction) /
    /// [`ReplaceFunction`](ProgramEdit::ReplaceFunction) per function whose
    /// definition differs (ignoring statement ids and line numbers, which
    /// carry no meaning across snapshots).
    ///
    /// `diff(old, new).apply(old)` reproduces `new` up to statement
    /// renumbering whenever both programs define their functions in the same
    /// relative order.
    pub fn diff(old: &Program, new: &Program) -> ProgramDelta {
        let mut edits = Vec::new();
        for g in &old.globals {
            if !new.globals.contains(g) {
                edits.push(ProgramEdit::RemoveGlobal(g.clone()));
            }
        }
        for g in &new.globals {
            if !old.globals.contains(g) {
                edits.push(ProgramEdit::AddGlobal(g.clone()));
            }
        }
        for f in &old.functions {
            if new.function(&f.name).is_none() {
                edits.push(ProgramEdit::RemoveFunction(f.name.clone()));
            }
        }
        for f in &new.functions {
            match old.function(&f.name) {
                None => edits.push(ProgramEdit::AddFunction(f.clone())),
                Some(of) => {
                    if !functions_equal_modulo_ids(of, f) {
                        edits.push(ProgramEdit::ReplaceFunction(f.clone()));
                    }
                }
            }
        }
        ProgramDelta { edits }
    }

    /// Applies the delta to `base`, returning the edited program after
    /// re-normalization (call hoisting, callee resolution, renumbering) and
    /// semantic checking.
    ///
    /// # Errors
    ///
    /// [`LangError::Sema`] when an edit references an unknown function,
    /// statement, or global, or when the edited program fails the checker.
    pub fn apply(&self, base: &Program) -> Result<Program, LangError> {
        let mut program = base.clone();
        for edit in &self.edits {
            apply_edit(&mut program, edit)?;
        }
        let program = normalize::normalize(program);
        sema::check(&program)?;
        Ok(program)
    }

    /// The names of functions this delta touches directly, resolved against
    /// the base program (statement edits are attributed to their enclosing
    /// function). Added and removed functions are included by name.
    pub fn touched_functions(&self, base: &Program) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for edit in &self.edits {
            match edit {
                ProgramEdit::AddGlobal(_) | ProgramEdit::RemoveGlobal(_) => {}
                ProgramEdit::AddFunction(f) | ProgramEdit::ReplaceFunction(f) => {
                    out.insert(f.name.clone());
                }
                ProgramEdit::RemoveFunction(n) => {
                    out.insert(n.clone());
                }
                ProgramEdit::InsertStmt { function, .. } => {
                    out.insert(function.clone());
                }
                ProgramEdit::RemoveStmt { id } | ProgramEdit::ReplaceStmt { id, .. } => {
                    if let Some(f) = owning_function(base, *id) {
                        out.insert(f);
                    }
                }
            }
        }
        out
    }

    /// `true` when the delta edits the global-variable list (which forces a
    /// whole-program reanalysis downstream: every procedure's formal-in/out
    /// layout may depend on the set of globals).
    pub fn touches_globals(&self) -> bool {
        self.edits
            .iter()
            .any(|e| matches!(e, ProgramEdit::AddGlobal(_) | ProgramEdit::RemoveGlobal(_)))
    }
}

/// The function containing statement `id` in `program`, if any.
pub fn owning_function(program: &Program, id: StmtId) -> Option<String> {
    let mut out = None;
    program.visit_all(|f, s| {
        if s.id == id && out.is_none() {
            out = Some(f.to_string());
        }
    });
    out
}

fn apply_edit(program: &mut Program, edit: &ProgramEdit) -> Result<(), LangError> {
    match edit {
        ProgramEdit::AddGlobal(g) => {
            if program.globals.contains(g) {
                return Err(LangError::sema(0, format!("global `{g}` already exists")));
            }
            program.globals.push(g.clone());
            Ok(())
        }
        ProgramEdit::RemoveGlobal(g) => {
            let before = program.globals.len();
            program.globals.retain(|x| x != g);
            if program.globals.len() == before {
                return Err(LangError::sema(0, format!("no global `{g}` to remove")));
            }
            Ok(())
        }
        ProgramEdit::AddFunction(f) => {
            if program.function(&f.name).is_some() {
                return Err(LangError::sema(
                    f.line,
                    format!("function `{}` already exists", f.name),
                ));
            }
            program.functions.push(f.clone());
            Ok(())
        }
        ProgramEdit::RemoveFunction(name) => {
            let before = program.functions.len();
            program.functions.retain(|f| f.name != *name);
            if program.functions.len() == before {
                return Err(LangError::sema(
                    0,
                    format!("no function `{name}` to remove"),
                ));
            }
            Ok(())
        }
        ProgramEdit::ReplaceFunction(f) => {
            match program.functions.iter_mut().find(|g| g.name == f.name) {
                Some(slot) => {
                    *slot = f.clone();
                    Ok(())
                }
                None => Err(LangError::sema(
                    f.line,
                    format!("no function `{}` to replace", f.name),
                )),
            }
        }
        ProgramEdit::InsertStmt { function, at, stmt } => {
            let f = program
                .functions
                .iter_mut()
                .find(|f| f.name == *function)
                .ok_or_else(|| {
                    LangError::sema(0, format!("no function `{function}` to insert into"))
                })?;
            let at = (*at).min(f.body.stmts.len());
            f.body.stmts.insert(at, stmt.clone());
            Ok(())
        }
        ProgramEdit::RemoveStmt { id } => {
            if !edit_stmt_by_id(program, *id, &mut |stmts, i| {
                stmts.remove(i);
            }) {
                return Err(LangError::sema(0, format!("no statement {id:?} to remove")));
            }
            Ok(())
        }
        ProgramEdit::ReplaceStmt { id, stmt } => {
            if !edit_stmt_by_id(program, *id, &mut |stmts, i| {
                stmts[i] = stmt.clone();
            }) {
                return Err(LangError::sema(
                    0,
                    format!("no statement {id:?} to replace"),
                ));
            }
            Ok(())
        }
    }
}

/// Finds the statement with id `id` and hands its enclosing statement list
/// (plus its index) to `op`. Returns `false` when no such statement exists.
fn edit_stmt_by_id(
    program: &mut Program,
    id: StmtId,
    op: &mut dyn FnMut(&mut Vec<Stmt>, usize),
) -> bool {
    fn walk(block: &mut Block, id: StmtId, op: &mut dyn FnMut(&mut Vec<Stmt>, usize)) -> bool {
        if let Some(i) = block.stmts.iter().position(|s| s.id == id) {
            op(&mut block.stmts, i);
            return true;
        }
        for s in &mut block.stmts {
            let found = match &mut s.kind {
                crate::ast::StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => {
                    walk(then_block, id, op) || else_block.as_mut().is_some_and(|e| walk(e, id, op))
                }
                crate::ast::StmtKind::While { body, .. } => walk(body, id, op),
                _ => false,
            };
            if found {
                return true;
            }
        }
        false
    }
    for f in &mut program.functions {
        if walk(&mut f.body, id, op) {
            return true;
        }
    }
    false
}

/// Structural function equality ignoring statement ids and source lines
/// (neither survives renumbering, so neither means anything across
/// snapshots).
pub fn functions_equal_modulo_ids(a: &Function, b: &Function) -> bool {
    let strip = |f: &Function| -> Function {
        let mut f = f.clone();
        f.line = 0;
        f.body.visit_mut(&mut |s| {
            s.id = StmtId::UNASSIGNED;
            s.line = 0;
        });
        f
    };
    strip(a) == strip(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, StmtKind};
    use crate::frontend;

    const BASE: &str = r#"
        int g;
        void set(int a) { g = a; }
        int main() { set(3); printf("%d", g); return 0; }
    "#;

    fn assign(name: &str, v: i64) -> Stmt {
        Stmt::new(
            0,
            StmtKind::Assign {
                name: name.into(),
                value: Expr::Int(v),
            },
        )
    }

    #[test]
    fn diff_of_identical_programs_is_empty() {
        let p = frontend(BASE).unwrap();
        let q = frontend(BASE).unwrap();
        assert!(ProgramDelta::diff(&p, &q).is_empty());
    }

    #[test]
    fn diff_detects_function_replacement() {
        let p = frontend(BASE).unwrap();
        let q = frontend(&BASE.replace("g = a;", "g = a + 1;")).unwrap();
        let d = ProgramDelta::diff(&p, &q);
        assert_eq!(d.edits.len(), 1);
        assert!(matches!(&d.edits[0], ProgramEdit::ReplaceFunction(f) if f.name == "set"));
        assert_eq!(d.touched_functions(&p), BTreeSet::from(["set".to_string()]));
    }

    #[test]
    fn diff_roundtrips_through_apply() {
        let p = frontend(BASE).unwrap();
        let q = frontend(
            r#"
            int g, h;
            void set(int a) { g = a; h = a; }
            void extra() { h = 0; }
            int main() { set(3); extra(); printf("%d", g + h); return 0; }
            "#,
        )
        .unwrap();
        let d = ProgramDelta::diff(&p, &q);
        let applied = d.apply(&p).unwrap();
        // Same functions, same bodies (modulo renumbering), same globals.
        assert_eq!(applied.globals, q.globals);
        assert_eq!(applied.functions.len(), q.functions.len());
        for f in &q.functions {
            let af = applied.function(&f.name).expect("function present");
            assert!(functions_equal_modulo_ids(af, f), "{} differs", f.name);
        }
        // And the resulting delta to `q` is now empty (function order may
        // differ when functions are added, so compare per-function).
        assert!(ProgramDelta::diff(&applied, &q)
            .edits
            .iter()
            .all(|e| !matches!(e, ProgramEdit::ReplaceFunction(_))));
    }

    #[test]
    fn insert_and_remove_statements() {
        let p = frontend(BASE).unwrap();
        let d = ProgramDelta::single(ProgramEdit::InsertStmt {
            function: "set".into(),
            at: usize::MAX,
            stmt: assign("g", 9),
        });
        let q = d.apply(&p).unwrap();
        let set = q.function("set").unwrap();
        assert_eq!(set.body.stmts.len(), 2);

        // Remove it again by id.
        let id = set.body.stmts[1].id;
        let r = ProgramDelta::single(ProgramEdit::RemoveStmt { id })
            .apply(&q)
            .unwrap();
        assert!(functions_equal_modulo_ids(
            r.function("set").unwrap(),
            p.function("set").unwrap()
        ));
    }

    #[test]
    fn replace_statement_by_id() {
        let p = frontend(BASE).unwrap();
        let id = p.function("set").unwrap().body.stmts[0].id;
        let q = ProgramDelta::single(ProgramEdit::ReplaceStmt {
            id,
            stmt: assign("g", 7),
        })
        .apply(&p)
        .unwrap();
        let set = q.function("set").unwrap();
        assert!(matches!(
            &set.body.stmts[0].kind,
            StmtKind::Assign {
                value: Expr::Int(7),
                ..
            }
        ));
        assert_eq!(
            ProgramDelta::single(ProgramEdit::ReplaceStmt {
                id,
                stmt: assign("g", 7),
            })
            .touched_functions(&p),
            BTreeSet::from(["set".to_string()])
        );
    }

    #[test]
    fn apply_rejects_bad_edits() {
        let p = frontend(BASE).unwrap();
        // Unknown function.
        assert!(
            ProgramDelta::single(ProgramEdit::RemoveFunction("nope".into()))
                .apply(&p)
                .is_err()
        );
        // Unknown statement id.
        assert!(
            ProgramDelta::single(ProgramEdit::RemoveStmt { id: StmtId(9999) })
                .apply(&p)
                .is_err()
        );
        // Removing a global that is still used fails sema.
        assert!(ProgramDelta::single(ProgramEdit::RemoveGlobal("g".into()))
            .apply(&p)
            .is_err());
        // Duplicate global.
        assert!(ProgramDelta::single(ProgramEdit::AddGlobal("g".into()))
            .apply(&p)
            .is_err());
    }

    #[test]
    fn inserted_calls_are_normalized() {
        // An inserted statement with a nested call gets hoisted by apply's
        // re-normalization, so the SDG layer sees one call per statement.
        let p = frontend(
            r#"
            int g;
            int id(int x) { return x; }
            int main() { g = 1; printf("%d", g); return 0; }
            "#,
        )
        .unwrap();
        let q = ProgramDelta::single(ProgramEdit::InsertStmt {
            function: "main".into(),
            at: 1,
            stmt: Stmt::new(
                0,
                StmtKind::Assign {
                    name: "g".into(),
                    value: Expr::Binary(
                        crate::ast::BinOp::Add,
                        Box::new(Expr::Call(Box::new(crate::ast::CallStmt {
                            callee: crate::ast::Callee::Named("id".into()),
                            args: vec![Expr::Int(2)],
                            assign_to: None,
                        }))),
                        Box::new(Expr::Int(1)),
                    ),
                },
            ),
        })
        .apply(&p)
        .unwrap();
        let mut has_expr_call = false;
        q.visit_all(|_, s| {
            if let StmtKind::Assign { value, .. } = &s.kind {
                has_expr_call |= value.contains_call();
            }
        });
        assert!(!has_expr_call, "apply must re-normalize nested calls");
    }

    #[test]
    fn globals_edits_are_flagged() {
        assert!(ProgramDelta::single(ProgramEdit::AddGlobal("z".into())).touches_globals());
        assert!(!ProgramDelta::single(ProgramEdit::RemoveFunction("f".into())).touches_globals());
    }
}
