//! The system-dependence-graph data model (Horwitz–Reps–Binkley SDGs).

use specslice_lang::ast::StmtId;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an SDG vertex (dense, program-wide).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Identifier of a procedure (index into [`Sdg::procs`]).
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a call site (index into [`Sdg::call_sites`]). Call-site ids
/// are the `C1, C2, …` labels of the paper and become PDS stack symbols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSiteId(pub u32);

impl CallSiteId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Input slot of a procedure: what a formal-in / actual-in vertex carries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InSlot {
    /// The `i`-th declared parameter.
    Param(usize),
    /// A global variable (by name; includes the synthetic `$stdin` stream).
    Global(String),
    /// The format string of a library call (`printf`/`scanf`); carries no
    /// variable.
    Format,
}

/// Output slot of a procedure: what a formal-out / actual-out vertex carries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OutSlot {
    /// The function's return value.
    Ret,
    /// The final value of by-reference parameter `i`.
    RefParam(usize),
    /// A global variable (by name).
    Global(String),
    /// The `i`-th `&var` target of a `scanf`.
    ScanTarget(usize),
}

/// Library procedures (no PDGs; handled per §6.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LibFn {
    /// `printf` — output; no effects on program state.
    Printf,
    /// `scanf` — reads the `$stdin` stream, defines its targets.
    Scanf,
    /// `exit` — terminates the program (a jump in the CFG).
    Exit,
}

impl LibFn {
    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            LibFn::Printf => "printf",
            LibFn::Scanf => "scanf",
            LibFn::Exit => "exit",
        }
    }
}

/// What a call site calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CalleeKind {
    /// A user-defined procedure (gets call/param edges and PDS push rules).
    User(ProcId),
    /// A library procedure (actual-ins/outs only; §6.1 closure edges).
    Library(LibFn),
}

/// The kind (and syntax anchor) of an SDG vertex.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VertexKind {
    /// Procedure entry.
    Entry,
    /// An ordinary statement (assignment, declaration with initializer).
    Statement {
        /// The statement this vertex represents.
        stmt: StmtId,
    },
    /// An `if`/`while` condition.
    Predicate {
        /// The owning statement.
        stmt: StmtId,
    },
    /// A control-transfer statement (`return`, `break`, `continue`) —
    /// a Ball–Horwitz pseudo-predicate.
    Jump {
        /// The owning statement.
        stmt: StmtId,
    },
    /// A call vertex (user or library call).
    Call {
        /// The owning statement.
        stmt: StmtId,
        /// The call site.
        site: CallSiteId,
    },
    /// An actual-in vertex at a call site.
    ActualIn {
        /// The call site.
        site: CallSiteId,
        /// Which input it feeds.
        slot: InSlot,
    },
    /// An actual-out vertex at a call site.
    ActualOut {
        /// The call site.
        site: CallSiteId,
        /// Which output it receives.
        slot: OutSlot,
    },
    /// A formal-in vertex of a procedure.
    FormalIn {
        /// Which input it receives.
        slot: InSlot,
    },
    /// A formal-out vertex of a procedure.
    FormalOut {
        /// Which output it produces.
        slot: OutSlot,
    },
}

/// An SDG vertex: kind plus owning procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Vertex {
    /// What the vertex represents.
    pub kind: VertexKind,
    /// The procedure whose PDG contains this vertex.
    pub proc: ProcId,
}

/// Kinds of SDG edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Control dependence (includes the paper's §6.1 library-actual edges'
    /// complement; see [`EdgeKind::LibActual`] for those).
    Control,
    /// Data (flow) dependence.
    Flow,
    /// Call edge: call vertex → callee entry.
    Call,
    /// Parameter-in edge: actual-in → formal-in.
    ParamIn,
    /// Parameter-out edge: formal-out → actual-out.
    ParamOut,
    /// Summary edge: actual-in → actual-out at the same call site.
    Summary,
    /// §6.1: actual-in → library call vertex, so a sliced library call keeps
    /// all of its arguments.
    LibActual,
}

/// One procedure's PDG skeleton inside the SDG.
#[derive(Clone, Debug)]
pub struct Proc {
    /// Procedure id.
    pub id: ProcId,
    /// Source-level name.
    pub name: String,
    /// Entry vertex.
    pub entry: VertexId,
    /// Formal-in vertices, in slot order (params first, then globals).
    pub formal_ins: Vec<VertexId>,
    /// Formal-out vertices, in slot order.
    pub formal_outs: Vec<VertexId>,
    /// Every vertex of this procedure's PDG.
    pub vertices: Vec<VertexId>,
}

/// One call site.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Call-site id (`C1, C2, …`).
    pub id: CallSiteId,
    /// Procedure containing the call.
    pub caller: ProcId,
    /// What is called.
    pub callee: CalleeKind,
    /// The call statement.
    pub stmt: StmtId,
    /// The call vertex.
    pub call_vertex: VertexId,
    /// Actual-in vertices, in slot order.
    pub actual_ins: Vec<VertexId>,
    /// Actual-out vertices, in slot order.
    pub actual_outs: Vec<VertexId>,
}

/// A whole-program system dependence graph.
#[derive(Clone, Debug, Default)]
pub struct Sdg {
    /// Vertex table.
    pub vertices: Vec<Vertex>,
    /// Procedures (PDGs).
    pub procs: Vec<Proc>,
    /// Call sites.
    pub call_sites: Vec<CallSite>,
    /// Forward adjacency: `edges[v] = [(target, kind), …]`.
    pub edges: Vec<Vec<(VertexId, EdgeKind)>>,
    /// Reverse adjacency: `redges[v] = [(source, kind), …]`.
    pub redges: Vec<Vec<(VertexId, EdgeKind)>>,
    /// Lookup: procedure name → id.
    pub proc_by_name: HashMap<String, ProcId>,
    /// The `main` procedure.
    pub main: ProcId,
    /// Number of edges (by kind, for stats).
    pub edge_counts: HashMap<EdgeKind, usize>,
    /// The interprocedural mod/ref summaries the builder derived the
    /// formal-in/out layouts from, keyed by procedure name. Retained so the
    /// incremental patcher ([`crate::patch`]) can tell which procedures'
    /// layouts and call-site effects survived an edit (empty for hand-built
    /// SDGs, which the patcher treats as fully dirty).
    pub modref: HashMap<String, crate::modref::ModRefInfo>,
}

impl Sdg {
    /// Adds a vertex, returning its id.
    pub fn add_vertex(&mut self, v: Vertex) -> VertexId {
        let id = VertexId(self.vertices.len() as u32);
        self.vertices.push(v);
        self.edges.push(Vec::new());
        self.redges.push(Vec::new());
        id
    }

    /// Adds an edge (deduplicated per `(from, to, kind)`).
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, kind: EdgeKind) {
        if self.edges[from.index()]
            .iter()
            .any(|&(t, k)| t == to && k == kind)
        {
            return;
        }
        self.edges[from.index()].push((to, kind));
        self.redges[to.index()].push((from, kind));
        *self.edge_counts.entry(kind).or_insert(0) += 1;
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_counts.values().sum()
    }

    /// The vertex record for `v`.
    pub fn vertex(&self, v: VertexId) -> &Vertex {
        &self.vertices[v.index()]
    }

    /// The procedure record for `p`.
    pub fn proc(&self, p: ProcId) -> &Proc {
        &self.procs[p.index()]
    }

    /// The call-site record for `c`.
    pub fn call_site(&self, c: CallSiteId) -> &CallSite {
        &self.call_sites[c.index()]
    }

    /// Procedure lookup by name.
    pub fn proc_named(&self, name: &str) -> Option<&Proc> {
        self.proc_by_name.get(name).map(|&p| self.proc(p))
    }

    /// Outgoing edges of `v`.
    pub fn successors(&self, v: VertexId) -> &[(VertexId, EdgeKind)] {
        &self.edges[v.index()]
    }

    /// Incoming edges of `v`.
    pub fn predecessors(&self, v: VertexId) -> &[(VertexId, EdgeKind)] {
        &self.redges[v.index()]
    }

    /// All vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertices.len() as u32).map(VertexId)
    }

    /// Call sites whose callee is user procedure `p`.
    pub fn call_sites_of(&self, p: ProcId) -> impl Iterator<Item = &CallSite> {
        self.call_sites
            .iter()
            .filter(move |c| c.callee == CalleeKind::User(p))
    }

    /// The `printf` call sites, in site order — the per-criterion workload
    /// of the paper's evaluation (one slice per printf).
    pub fn printf_call_sites(&self) -> impl Iterator<Item = &CallSite> {
        self.call_sites
            .iter()
            .filter(|c| c.callee == CalleeKind::Library(LibFn::Printf))
    }

    /// The actual-in vertices of every `printf` call site — the criterion
    /// shape used throughout the paper ("slice with respect to the actual
    /// parameters of the call to printf").
    pub fn printf_actual_in_vertices(&self) -> Vec<VertexId> {
        self.printf_call_sites()
            .flat_map(|c| c.actual_ins.iter().copied())
            .collect()
    }

    /// The actual-in vertex at call site `c` matching formal-in slot `slot`,
    /// if any.
    pub fn actual_in_for_slot(&self, c: &CallSite, slot: &InSlot) -> Option<VertexId> {
        c.actual_ins.iter().copied().find(
            |&v| matches!(&self.vertex(v).kind, VertexKind::ActualIn { slot: s, .. } if s == slot),
        )
    }

    /// The actual-out vertex at call site `c` matching formal-out slot
    /// `slot`, if any.
    pub fn actual_out_for_slot(&self, c: &CallSite, slot: &OutSlot) -> Option<VertexId> {
        c.actual_outs.iter().copied().find(
            |&v| matches!(&self.vertex(v).kind, VertexKind::ActualOut { slot: s, .. } if s == slot),
        )
    }

    /// The slot of a formal-in / actual-in vertex.
    pub fn in_slot(&self, v: VertexId) -> Option<&InSlot> {
        match &self.vertex(v).kind {
            VertexKind::FormalIn { slot } | VertexKind::ActualIn { slot, .. } => Some(slot),
            _ => None,
        }
    }

    /// The slot of a formal-out / actual-out vertex.
    pub fn out_slot(&self, v: VertexId) -> Option<&OutSlot> {
        match &self.vertex(v).kind {
            VertexKind::FormalOut { slot } | VertexKind::ActualOut { slot, .. } => Some(slot),
            _ => None,
        }
    }

    /// The statement a vertex is anchored to, if any.
    pub fn stmt_of(&self, v: VertexId) -> Option<StmtId> {
        match self.vertex(v).kind {
            VertexKind::Statement { stmt }
            | VertexKind::Predicate { stmt }
            | VertexKind::Jump { stmt }
            | VertexKind::Call { stmt, .. } => Some(stmt),
            _ => None,
        }
    }

    /// Approximate retained bytes (Fig. 22 accounting).
    pub fn approx_bytes(&self) -> usize {
        let edge_bytes: usize = self
            .edges
            .iter()
            .map(|v| v.len() * std::mem::size_of::<(VertexId, EdgeKind)>())
            .sum();
        self.vertices.len() * 48 + 2 * edge_bytes
    }

    /// A short human-readable label for a vertex (debugging / experiment
    /// dumps).
    pub fn label(&self, v: VertexId) -> String {
        let vx = self.vertex(v);
        let pname = &self.proc(vx.proc).name;
        match &vx.kind {
            VertexKind::Entry => format!("{pname}:entry"),
            VertexKind::Statement { stmt } => format!("{pname}:{stmt:?}"),
            VertexKind::Predicate { stmt } => format!("{pname}:{stmt:?}?"),
            VertexKind::Jump { stmt } => format!("{pname}:{stmt:?}!"),
            VertexKind::Call { site, .. } => format!("{pname}:call@{site:?}"),
            VertexKind::ActualIn { site, slot } => format!("{pname}:ain{slot:?}@{site:?}"),
            VertexKind::ActualOut { site, slot } => format!("{pname}:aout{slot:?}@{site:?}"),
            VertexKind::FormalIn { slot } => format!("{pname}:fin{slot:?}"),
            VertexKind::FormalOut { slot } => format!("{pname}:fout{slot:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_deduplicate() {
        let mut sdg = Sdg::default();
        let p = ProcId(0);
        let a = sdg.add_vertex(Vertex {
            kind: VertexKind::Entry,
            proc: p,
        });
        let b = sdg.add_vertex(Vertex {
            kind: VertexKind::Statement { stmt: StmtId(0) },
            proc: p,
        });
        sdg.add_edge(a, b, EdgeKind::Control);
        sdg.add_edge(a, b, EdgeKind::Control);
        sdg.add_edge(a, b, EdgeKind::Flow);
        assert_eq!(sdg.edge_count(), 2);
        assert_eq!(sdg.successors(a).len(), 2);
        assert_eq!(sdg.predecessors(b).len(), 2);
    }

    #[test]
    fn slot_lookup() {
        let mut sdg = Sdg::default();
        let p = ProcId(0);
        let v = sdg.add_vertex(Vertex {
            kind: VertexKind::FormalIn {
                slot: InSlot::Param(1),
            },
            proc: p,
        });
        assert_eq!(sdg.in_slot(v), Some(&InSlot::Param(1)));
        assert_eq!(sdg.out_slot(v), None);
    }
}
