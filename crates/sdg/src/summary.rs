//! Summary-edge computation (Horwitz–Reps–Binkley / RHSR worklist).
//!
//! A summary edge `actual-in → actual-out` at a call site records that the
//! callee can transmit a dependence from that input to that output along a
//! *same-level* realizable path. Summary edges make the two-phase closure
//! slicer context-sensitive. (Alg. 1 of the paper does **not** need summary
//! edges — the PDS encoding omits them — but the closure-slice baseline and
//! Binkley's algorithm do.)

use crate::model::*;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Adds all summary edges to `sdg`. Idempotent.
pub fn add_summary_edges(sdg: &mut Sdg) {
    let all: BTreeSet<ProcId> = sdg.procs.iter().map(|p| p.id).collect();
    add_summary_edges_for(sdg, &all);
}

/// Adds the summary edges derivable from same-level paths to the formal-outs
/// of `seeds` only.
///
/// This is the incremental-patch entry point: after an edit, summary edges
/// of *unchanged* call sites are copied from the old SDG, and only the
/// procedures whose transitive callees changed (plus their direct callees,
/// whose path facts feed them) need their path edges re-derived. Seeding
/// every procedure is exactly [`add_summary_edges`]. Idempotent.
pub fn add_summary_edges_for(sdg: &mut Sdg, seeds: &BTreeSet<ProcId>) {
    // Path edge (v, fo): v reaches formal-out fo along a same-level path.
    let mut pe: HashSet<(VertexId, VertexId)> = HashSet::new();
    let mut paths_from: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
    let mut worklist: Vec<(VertexId, VertexId)> = Vec::new();

    let push = |pe: &mut HashSet<(VertexId, VertexId)>,
                paths_from: &mut HashMap<VertexId, Vec<VertexId>>,
                worklist: &mut Vec<(VertexId, VertexId)>,
                v: VertexId,
                fo: VertexId| {
        if pe.insert((v, fo)) {
            paths_from.entry(v).or_default().push(fo);
            worklist.push((v, fo));
        }
    };

    for proc in sdg.procs.clone() {
        if !seeds.contains(&proc.id) {
            continue;
        }
        for fo in proc.formal_outs {
            push(&mut pe, &mut paths_from, &mut worklist, fo, fo);
        }
    }

    // Call sites indexed by callee for the formal-in step.
    let mut sites_by_callee: HashMap<ProcId, Vec<CallSite>> = HashMap::new();
    for site in sdg.call_sites.clone() {
        if let CalleeKind::User(p) = site.callee {
            sites_by_callee.entry(p).or_default().push(site);
        }
    }

    while let Some((v, fo)) = worklist.pop() {
        if let VertexKind::FormalIn { slot } = sdg.vertex(v).kind.clone() {
            let p = sdg.vertex(v).proc;
            let oslot = sdg.out_slot(fo).cloned().expect("fo is a formal-out");
            if let Some(sites) = sites_by_callee.get(&p).cloned() {
                for site in sites {
                    let (Some(ai), Some(ao)) = (
                        sdg.actual_in_for_slot(&site, &slot),
                        sdg.actual_out_for_slot(&site, &oslot),
                    ) else {
                        continue;
                    };
                    sdg.add_edge(ai, ao, EdgeKind::Summary);
                    // Propagate existing path edges across the new summary.
                    if let Some(fos) = paths_from.get(&ao).cloned() {
                        for fo2 in fos {
                            push(&mut pe, &mut paths_from, &mut worklist, ai, fo2);
                        }
                    }
                }
            }
        }
        for &(u, k) in sdg.predecessors(v).to_vec().iter() {
            if matches!(
                k,
                EdgeKind::Control | EdgeKind::Flow | EdgeKind::Summary | EdgeKind::LibActual
            ) {
                push(&mut pe, &mut paths_from, &mut worklist, u, fo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_sdg;
    use specslice_lang::frontend;

    fn sdg_of(src: &str) -> Sdg {
        build_sdg(&frontend(src).unwrap()).unwrap()
    }

    fn summary_edges(sdg: &Sdg) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for v in sdg.vertex_ids() {
            for &(t, k) in sdg.successors(v) {
                if k == EdgeKind::Summary {
                    out.push((v, t));
                }
            }
        }
        out
    }

    #[test]
    fn direct_transmission() {
        let sdg = sdg_of(
            r#"
            int g;
            void set(int a) { g = a; }
            int main() { set(3); printf("%d", g); return 0; }
            "#,
        );
        // set: formal-in a reaches formal-out g ⇒ summary ai(a) → ao(g).
        let es = summary_edges(&sdg);
        assert_eq!(es.len(), 1);
        let (ai, ao) = es[0];
        assert!(matches!(
            sdg.vertex(ai).kind,
            VertexKind::ActualIn {
                slot: InSlot::Param(0),
                ..
            }
        ));
        assert!(matches!(
            &sdg.vertex(ao).kind,
            VertexKind::ActualOut {
                slot: OutSlot::Global(g),
                ..
            } if g == "g"
        ));
    }

    #[test]
    fn no_summary_without_dependence() {
        let sdg = sdg_of(
            r#"
            int g;
            void noop(int a) { int x; x = a; }
            int main() { g = 1; noop(5); printf("%d", g); return 0; }
            "#,
        );
        assert!(summary_edges(&sdg).is_empty());
    }

    #[test]
    fn transitive_through_nested_calls() {
        let sdg = sdg_of(
            r#"
            int g;
            void inner(int x) { g = x; }
            void outer(int y) { inner(y + 1); }
            int main() { outer(2); printf("%d", g); return 0; }
            "#,
        );
        let es = summary_edges(&sdg);
        // inner's site in outer AND outer's site in main both get a → g edges.
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn recursive_summaries_converge() {
        let sdg = sdg_of(
            r#"
            int g;
            void r(int k) {
                if (k > 0) { r(k - 1); }
                g = k;
            }
            int main() { r(3); printf("%d", g); return 0; }
            "#,
        );
        let es = summary_edges(&sdg);
        // At the recursive site and the main site: k → g.
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn idempotent() {
        let mut sdg = sdg_of(
            r#"
            int g;
            void set(int a) { g = a; }
            int main() { set(3); printf("%d", g); return 0; }
            "#,
        );
        let before = sdg.edge_count();
        add_summary_edges(&mut sdg);
        assert_eq!(sdg.edge_count(), before);
    }
}
