//! Binkley's monovariant executable slicing (§5 of the paper; Binkley 1993).
//!
//! Starting from the HRB closure slice, repeatedly add back the actual
//! parameters that are *missing* at call sites whose callee keeps the
//! corresponding formal (the parameter-mismatch repair), together with the
//! backward closure slice from those actuals — until no mismatches remain.
//! The result is executable but may contain vertices *not* in the closure
//! slice ("extraneous" elements, the 7.1% of Fig. 19), unlike polyvariant
//! specialization slicing which only replicates closure-slice elements.

use crate::model::*;
use crate::slice::backward_closure_slice;
use std::collections::BTreeSet;

/// Result of monovariant executable slicing.
#[derive(Clone, Debug)]
pub struct MonovariantSlice {
    /// The executable slice (vertex set).
    pub vertices: BTreeSet<VertexId>,
    /// Subset of `vertices` that is *not* in the initial closure slice
    /// (Binkley's "extra" elements).
    pub extraneous: BTreeSet<VertexId>,
    /// Number of mismatch-repair iterations performed.
    pub iterations: usize,
}

/// Computes Binkley's monovariant executable slice from `criterion`.
pub fn monovariant_executable_slice(sdg: &Sdg, criterion: &[VertexId]) -> MonovariantSlice {
    let closure = backward_closure_slice(sdg, criterion);
    let mut current = closure.clone();
    let mut iterations = 0;
    loop {
        iterations += 1;
        let mismatches = missing_actuals(sdg, &current);
        if mismatches.is_empty() {
            break;
        }
        let mut seeds: Vec<VertexId> = current.iter().copied().collect();
        seeds.extend(mismatches.iter().copied());
        current = backward_closure_slice(sdg, &seeds);
    }
    let extraneous = current.difference(&closure).copied().collect();
    MonovariantSlice {
        vertices: current,
        extraneous,
        iterations,
    }
}

/// Actual-in vertices missing at call sites where the matching formal-in is
/// in the set.
fn missing_actuals(sdg: &Sdg, set: &BTreeSet<VertexId>) -> Vec<VertexId> {
    let mut out = Vec::new();
    for site in &sdg.call_sites {
        let CalleeKind::User(callee) = site.callee else {
            continue;
        };
        if !set.contains(&site.call_vertex) {
            continue;
        }
        let callee_proc = sdg.proc(callee);
        for (&ai, &fi) in site.actual_ins.iter().zip(&callee_proc.formal_ins) {
            if set.contains(&fi) && !set.contains(&ai) {
                out.push(ai);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_sdg;
    use crate::slice::parameter_mismatches;
    use specslice_lang::frontend;

    /// Fig. 14 of the paper.
    const FIG14: &str = r#"
        int g1, g2, g3;
        void p(int a, int b) {
            g1 = a;
            g2 = b;
            g3 = g2;
        }
        int main() {
            g2 = 100;
            p(g2, 2);
            p(g2, 3);
            p(4, g1 + g2);
            printf("%d", g2);
        }
    "#;

    #[test]
    fn fig14_monovariant_slice() {
        let sdg = build_sdg(&frontend(FIG14).unwrap()).unwrap();
        let criterion = sdg.printf_actual_in_vertices();
        let mono = monovariant_executable_slice(&sdg, &criterion);

        // Executable: no parameter mismatches left.
        assert!(parameter_mismatches(&sdg, &mono.vertices).is_empty());

        // Extraneous elements exist: the missing first actuals at lines 14
        // and 16, plus g2 = 100 (needed to initialize g2 for `p(g2, 2)`).
        assert!(!mono.extraneous.is_empty());
        let main = sdg.proc_named("main").unwrap();
        let g2_100 = main
            .vertices
            .iter()
            .copied()
            .find(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .unwrap();
        assert!(
            mono.vertices.contains(&g2_100),
            "Binkley adds g2 = 100 back (Fig. 14(c))"
        );
        assert!(mono.extraneous.contains(&g2_100));

        // But g3 = g2 stays out (it is irrelevant in every variant).
        let p = sdg.proc_named("p").unwrap();
        let stmts: Vec<VertexId> = p
            .vertices
            .iter()
            .copied()
            .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .collect();
        assert!(!mono.vertices.contains(&stmts[2]), "g3 = g2 excluded");
    }

    #[test]
    fn no_mismatch_means_closure_slice() {
        let sdg = build_sdg(
            &frontend(
                r#"
            int g;
            void set(int a) { g = a; }
            int main() { set(3); printf("%d", g); return 0; }
            "#,
            )
            .unwrap(),
        )
        .unwrap();
        let criterion = sdg.printf_actual_in_vertices();
        let mono = monovariant_executable_slice(&sdg, &criterion);
        assert!(mono.extraneous.is_empty());
        assert_eq!(mono.iterations, 1);
    }

    #[test]
    fn repair_cascades() {
        // The mismatch repair can itself create new mismatches one level up.
        let sdg = build_sdg(
            &frontend(
                r#"
            int g1, g2;
            void leaf(int a, int b) { g1 = a; g2 = b; }
            void mid(int x, int y) { leaf(x, y); }
            int main() {
                int u;
                int v;
                u = 1;
                v = 2;
                mid(u, v);
                leaf(0, g1);
                printf("%d", g2);
            }
            "#,
            )
            .unwrap(),
        )
        .unwrap();
        let criterion = sdg.printf_actual_in_vertices();
        let mono = monovariant_executable_slice(&sdg, &criterion);
        assert!(parameter_mismatches(&sdg, &mono.vertices).is_empty());
        assert!(
            mono.iterations >= 2,
            "expected cascade, got {}",
            mono.iterations
        );
    }
}
