//! The SDG builder: from a checked MiniC program to a full
//! Horwitz–Reps–Binkley system dependence graph.
//!
//! Pipeline (per §2.1.1 of the paper, plus the §6.1 library-call rule):
//!
//! 1. interprocedural [`crate::modref`] analysis decides formal-in/out slots;
//! 2. every procedure gets entry / formal-in / formal-out vertices, one
//!    vertex per statement or predicate, and per call site a call vertex
//!    with actual-in/actual-out vertices matching the callee's slots;
//! 3. a vertex-level CFG (with Ball–Horwitz augmented edges) yields control
//!    dependence via postdominators; parameter vertices are then re-anchored
//!    under their call vertex (resp. entry), the HRB convention;
//! 4. reaching definitions over the real CFG yield flow dependence —
//!    may-definitions (actual-outs of possibly-modified locations) generate
//!    but do not kill;
//! 5. call, parameter-in, parameter-out edges connect the PDGs, and library
//!    calls get §6.1 `actual-in → call` edges so executable slices keep
//!    whole library calls.

use crate::cfg::{build_stmt_cfg, StmtCfg};
use crate::model::*;
use crate::modref::{self, Location, ModRefInfo, STDIN};
use crate::SdgError;
use specslice_graphs::{DiGraph, DominatorTree, NodeId};
use specslice_lang::ast::{
    Block, Callee, Expr, Function, ParamMode, Program, RetKind, Stmt, StmtKind,
};
use std::collections::HashMap;

/// Synthetic variable carrying a function's return value to its formal-out.
pub const RET_VAR: &str = "$ret";

/// Structural validation shared by the full builder and the patcher.
pub(crate) fn validate_program(program: &Program) -> Result<(), SdgError> {
    let mut err = None;
    program.visit_all(|f, s| {
        if s.id == specslice_lang::StmtId::UNASSIGNED {
            err = Some(SdgError::NotNormalized {
                message: format!("statement in `{f}` lacks an id; run normalize"),
            });
        }
        if let StmtKind::Call(c) = &s.kind {
            if matches!(c.callee, Callee::Indirect(_)) {
                err = Some(SdgError::IndirectCall {
                    message: format!(
                        "`{f}` contains an indirect call; apply the indirect-call \
                         transformation (specslice::indirect) before building the SDG"
                    ),
                });
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    if program.main().is_none() {
        return Err(SdgError::NoMain);
    }
    Ok(())
}

/// Runs the interprocedural mod/ref analysis for `program`.
pub(crate) fn analyze_modref(program: &Program) -> HashMap<String, ModRefInfo> {
    let cfgs: HashMap<String, StmtCfg> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), build_stmt_cfg(f)))
        .collect();
    modref::analyze(program, &cfgs)
}

/// Builds the SDG of a normalized, checked program.
///
/// # Errors
///
/// Fails if the program has no `main`, contains indirect calls (run the
/// `specslice` §6.2 transformation first), or has unnumbered statements.
pub fn build_sdg(program: &Program) -> Result<Sdg, SdgError> {
    validate_program(program)?;
    let summaries = analyze_modref(program);
    Builder::new(program, summaries, None).build()
}

/// How one procedure's dependence edges are obtained when rebuilding an SDG
/// against a [`ReusePlan`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct CopyMode {
    /// The procedure's id in the *old* SDG.
    pub old_pid: ProcId,
    /// Whether the old summary edges at this procedure's call sites are
    /// still valid (true only when no transitive callee changed).
    pub with_summary: bool,
}

/// Instructions for [`build_sdg_reusing`]: which procedures' intra-PDG
/// dependence edges can be copied from `old` instead of being recomputed,
/// and which procedures' formal-outs must seed the summary-edge worklist.
pub(crate) struct ReusePlan<'a> {
    /// The SDG built for the pre-edit program.
    pub old: &'a Sdg,
    /// Per-procedure (by name) copy instructions; procedures absent from
    /// this map are rebuilt from scratch.
    pub copy: HashMap<String, CopyMode>,
    /// Procedures (by name) whose path-edge facts must be re-derived.
    pub summary_seeds: std::collections::BTreeSet<String>,
}

/// [`build_sdg`] with precomputed mod/ref summaries and a reuse plan: the
/// vertex skeleton is always rebuilt (vertex numbering must match a fresh
/// build exactly), but control/flow/§6.1 dependence — the expensive
/// postdominator and reaching-definitions passes — is copied by ordinal
/// correspondence for every procedure the plan covers, and summary edges are
/// recomputed only from the plan's seeds.
pub(crate) fn build_sdg_reusing(
    program: &Program,
    summaries: HashMap<String, ModRefInfo>,
    plan: &ReusePlan<'_>,
) -> Result<Sdg, SdgError> {
    validate_program(program)?;
    Builder::new(program, summaries, Some(plan)).build()
}

/// Per-procedure slot layout derived from the signature and mod/ref results.
#[derive(Clone, Debug)]
struct SlotLayout {
    in_slots: Vec<InSlot>,
    out_slots: Vec<OutSlot>,
}

fn layout_for(f: &Function, info: &ModRefInfo) -> SlotLayout {
    // `main` is never called: it gets no formal-in/out vertices, matching
    // the paper's Fig. 3 (m1..m23 only). Sema rejects calls to `main`.
    if f.name == "main" {
        return SlotLayout {
            in_slots: Vec::new(),
            out_slots: Vec::new(),
        };
    }
    let mut in_slots: Vec<InSlot> = (0..f.params.len()).map(InSlot::Param).collect();
    for g in info.globals_in() {
        in_slots.push(InSlot::Global(g));
    }
    // Output order mirrors *runtime write order* at a call site, which is
    // what the reaching-definitions chain of actual-out vertices encodes:
    // the callee writes globals during the call, by-ref copy-backs happen at
    // return, and the return-value assignment `x = f(…)` happens last (so a
    // must-modified by-ref actual never shadows the returned value — a bug
    // the property tests caught when Ret came first).
    let mut out_slots = Vec::new();
    for g in info.globals_out() {
        out_slots.push(OutSlot::Global(g));
    }
    for i in info.ref_params_out() {
        out_slots.push(OutSlot::RefParam(i));
    }
    if f.ret == RetKind::Int {
        out_slots.push(OutSlot::Ret);
    }
    SlotLayout {
        in_slots,
        out_slots,
    }
}

/// A definition performed at a CFG node.
#[derive(Clone, Debug)]
struct Def {
    var: String,
    /// Must-definitions kill other defs of the same variable; may-definitions
    /// (e.g. actual-outs of may-modified locations) only generate.
    kills: bool,
}

struct Builder<'p> {
    program: &'p Program,
    summaries: HashMap<String, ModRefInfo>,
    layouts: HashMap<String, SlotLayout>,
    sdg: Sdg,
    plan: Option<&'p ReusePlan<'p>>,
}

/// Vertex-level CFG under construction for one procedure.
struct ProcCfg {
    graph: DiGraph,
    augmented: Vec<(NodeId, NodeId)>,
    /// Vertex of each node (`None` only for the exit node).
    vertex: Vec<Option<VertexId>>,
    defs: Vec<Vec<Def>>,
    uses: Vec<Vec<String>>,
    entry: NodeId,
    exit: NodeId,
    /// First node of the formal-out chain (or exit when there is none);
    /// `return` statements jump here.
    fo_head: NodeId,
}

impl ProcCfg {
    fn add_node(&mut self, v: Option<VertexId>) -> NodeId {
        let n = self.graph.add_node();
        self.vertex.push(v);
        self.defs.push(Vec::new());
        self.uses.push(Vec::new());
        n
    }
}

type Frontier = Vec<(NodeId, bool)>;

struct LoopCtx {
    head: NodeId,
    breaks: Frontier,
}

impl<'p> Builder<'p> {
    fn new(
        program: &'p Program,
        summaries: HashMap<String, ModRefInfo>,
        plan: Option<&'p ReusePlan<'p>>,
    ) -> Self {
        let layouts = program
            .functions
            .iter()
            .map(|f| (f.name.clone(), layout_for(f, &summaries[&f.name])))
            .collect();
        Builder {
            program,
            summaries,
            layouts,
            sdg: Sdg::default(),
            plan,
        }
    }

    fn build(mut self) -> Result<Sdg, SdgError> {
        // Phase A: procedure records with entry/formal vertices.
        for (i, f) in self.program.functions.iter().enumerate() {
            let pid = ProcId(i as u32);
            let entry = self.sdg.add_vertex(Vertex {
                kind: VertexKind::Entry,
                proc: pid,
            });
            let layout = self.layouts[&f.name].clone();
            let formal_ins: Vec<VertexId> = layout
                .in_slots
                .iter()
                .map(|s| {
                    self.sdg.add_vertex(Vertex {
                        kind: VertexKind::FormalIn { slot: s.clone() },
                        proc: pid,
                    })
                })
                .collect();
            let formal_outs: Vec<VertexId> = layout
                .out_slots
                .iter()
                .map(|s| {
                    self.sdg.add_vertex(Vertex {
                        kind: VertexKind::FormalOut { slot: s.clone() },
                        proc: pid,
                    })
                })
                .collect();
            self.sdg.procs.push(Proc {
                id: pid,
                name: f.name.clone(),
                entry,
                formal_ins,
                formal_outs,
                vertices: Vec::new(),
            });
            self.sdg.proc_by_name.insert(f.name.clone(), pid);
        }
        self.sdg.main = self.sdg.proc_by_name["main"];

        // Phase B: per-procedure bodies, control and flow dependence
        // (dependence recomputation is skipped for plan-covered procedures).
        for i in 0..self.program.functions.len() {
            self.build_proc(ProcId(i as u32))?;
        }

        // Record per-proc vertex membership (before the interprocedural
        // phase, so a reuse plan can copy edges by ordinal correspondence).
        for v in self.sdg.vertex_ids() {
            let p = self.sdg.vertex(v).proc;
            self.sdg.procs[p.index()].vertices.push(v);
        }

        // Copy reused intra-procedural edges, in ProcId order (keeps edge
        // insertion order deterministic across runs).
        if let Some(plan) = self.plan {
            for i in 0..self.sdg.procs.len() {
                let name = self.sdg.procs[i].name.clone();
                if let Some(&mode) = plan.copy.get(&name) {
                    self.copy_proc_edges(ProcId(i as u32), mode, plan.old)?;
                }
            }
        }

        // Phase C: interprocedural edges.
        self.connect_call_sites();

        // Summary edges for the context-sensitive closure slicer.
        match self.plan {
            None => crate::summary::add_summary_edges(&mut self.sdg),
            Some(plan) => {
                let seeds: std::collections::BTreeSet<ProcId> = plan
                    .summary_seeds
                    .iter()
                    .filter_map(|n| self.sdg.proc_by_name.get(n).copied())
                    .collect();
                crate::summary::add_summary_edges_for(&mut self.sdg, &seeds);
            }
        }
        self.sdg.modref = self.summaries.clone();
        Ok(self.sdg)
    }

    /// Copies the old SDG's intra-procedural dependence edges (control,
    /// flow, §6.1 — and summary, when the callees are unchanged too) onto
    /// the freshly built vertex skeleton of one unchanged procedure. The
    /// `k`-th vertex created for a procedure is the same program point in
    /// both builds, so the copy is a plain ordinal zip.
    fn copy_proc_edges(
        &mut self,
        new_pid: ProcId,
        mode: CopyMode,
        old: &Sdg,
    ) -> Result<(), SdgError> {
        let old_vs = old.proc(mode.old_pid).vertices.clone();
        let new_vs = self.sdg.proc(new_pid).vertices.clone();
        if old_vs.len() != new_vs.len() {
            return Err(SdgError::new(format!(
                "reuse plan stale: `{}` has {} vertices, previously {}",
                self.sdg.proc(new_pid).name,
                new_vs.len(),
                old_vs.len()
            )));
        }
        let map: HashMap<VertexId, VertexId> =
            old_vs.iter().copied().zip(new_vs.iter().copied()).collect();
        for (&ov, &nv) in old_vs.iter().zip(&new_vs) {
            for &(ot, kind) in old.successors(ov) {
                let copyable = matches!(
                    kind,
                    EdgeKind::Control | EdgeKind::Flow | EdgeKind::LibActual
                ) || (mode.with_summary && kind == EdgeKind::Summary);
                if !copyable {
                    continue;
                }
                let Some(&nt) = map.get(&ot) else {
                    return Err(SdgError::new(format!(
                        "reuse plan stale: `{}` has an intra-procedural {kind:?} edge \
                         leaving the procedure",
                        self.sdg.proc(new_pid).name
                    )));
                };
                self.sdg.add_edge(nv, nt, kind);
            }
        }
        Ok(())
    }

    fn func(&self, pid: ProcId) -> &'p Function {
        &self.program.functions[pid.index()]
    }

    fn build_proc(&mut self, pid: ProcId) -> Result<(), SdgError> {
        let f = self.func(pid);
        let proc = self.sdg.proc(pid).clone();

        let mut cfg = ProcCfg {
            graph: DiGraph::new(),
            augmented: Vec::new(),
            vertex: Vec::new(),
            defs: Vec::new(),
            uses: Vec::new(),
            entry: NodeId(0),
            exit: NodeId(0),
            fo_head: NodeId(0),
        };
        let entry = cfg.add_node(Some(proc.entry));
        cfg.entry = entry;
        let exit = cfg.add_node(None);
        cfg.exit = exit;

        // Formal-in chain.
        let mut prev = entry;
        for &fi in &proc.formal_ins {
            let n = cfg.add_node(Some(fi));
            match &self.sdg.vertex(fi).kind {
                VertexKind::FormalIn { slot } => match slot {
                    InSlot::Param(i) => cfg.defs[n.index()].push(Def {
                        var: f.params[*i].name.clone(),
                        kills: true,
                    }),
                    InSlot::Global(g) => cfg.defs[n.index()].push(Def {
                        var: g.clone(),
                        kills: true,
                    }),
                    InSlot::Format => {}
                },
                _ => unreachable!(),
            }
            cfg.graph.add_edge(prev, n);
            prev = n;
        }
        let body_entry_pred = prev;

        // Formal-out chain (built now so `return` can target its head).
        let mut fo_nodes = Vec::new();
        for &fo in &proc.formal_outs {
            let n = cfg.add_node(Some(fo));
            match &self.sdg.vertex(fo).kind {
                VertexKind::FormalOut { slot } => match slot {
                    OutSlot::Ret => cfg.uses[n.index()].push(RET_VAR.to_string()),
                    OutSlot::RefParam(i) => cfg.uses[n.index()].push(f.params[*i].name.clone()),
                    OutSlot::Global(g) => cfg.uses[n.index()].push(g.clone()),
                    OutSlot::ScanTarget(_) => {}
                },
                _ => unreachable!(),
            }
            fo_nodes.push(n);
        }
        for w in fo_nodes.windows(2) {
            cfg.graph.add_edge(w[0], w[1]);
        }
        cfg.fo_head = *fo_nodes.first().unwrap_or(&exit);
        if let Some(&last) = fo_nodes.last() {
            cfg.graph.add_edge(last, exit);
        }

        // Body.
        let mut loops = Vec::new();
        let out = self.build_block(
            pid,
            &f.body,
            vec![(body_entry_pred, false)],
            &mut cfg,
            &mut loops,
        )?;
        let fo_head = cfg.fo_head;
        connect(&mut cfg, &out, fo_head);
        // Ball–Horwitz entry→exit edge.
        cfg.augmented.push((entry, exit));

        // Plan-covered procedures keep their old dependence edges (copied in
        // bulk once every vertex exists); only the vertex skeleton above —
        // which fixes program-wide vertex numbering — had to be rebuilt.
        let reused = self
            .plan
            .is_some_and(|plan| plan.copy.contains_key(&f.name));
        if !reused {
            self.control_dependence(pid, &cfg);
            self.flow_dependence(&cfg);
        }
        Ok(())
    }

    fn build_block(
        &mut self,
        pid: ProcId,
        block: &Block,
        mut frontier: Frontier,
        cfg: &mut ProcCfg,
        loops: &mut Vec<LoopCtx>,
    ) -> Result<Frontier, SdgError> {
        for s in &block.stmts {
            frontier = self.build_stmt(pid, s, frontier, cfg, loops)?;
        }
        Ok(frontier)
    }

    fn add_stmt_vertex(
        &mut self,
        pid: ProcId,
        kind: VertexKind,
        cfg: &mut ProcCfg,
        frontier: &Frontier,
    ) -> (VertexId, NodeId) {
        let v = self.sdg.add_vertex(Vertex { kind, proc: pid });
        let n = cfg.add_node(Some(v));
        connect(cfg, frontier, n);
        (v, n)
    }

    fn build_stmt(
        &mut self,
        pid: ProcId,
        s: &Stmt,
        frontier: Frontier,
        cfg: &mut ProcCfg,
        loops: &mut Vec<LoopCtx>,
    ) -> Result<Frontier, SdgError> {
        match &s.kind {
            StmtKind::Decl { init: None, .. } => Ok(frontier),
            StmtKind::Decl {
                name,
                init: Some(e),
                ..
            }
            | StmtKind::Assign { name, value: e } => {
                let (_, n) =
                    self.add_stmt_vertex(pid, VertexKind::Statement { stmt: s.id }, cfg, &frontier);
                cfg.defs[n.index()].push(Def {
                    var: name.clone(),
                    kills: true,
                });
                cfg.uses[n.index()].extend(e.vars());
                Ok(vec![(n, false)])
            }
            StmtKind::Call(c) => self.build_user_call(pid, s, c, frontier, cfg),
            StmtKind::Printf { args, .. } => {
                let site = CallSiteId(self.sdg.call_sites.len() as u32);
                let mut fr = frontier;
                let mut actual_ins = Vec::new();
                // Format actual-in (the paper's m22-style vertex).
                let (fv, fnode) = self.add_stmt_vertex(
                    pid,
                    VertexKind::ActualIn {
                        site,
                        slot: InSlot::Format,
                    },
                    cfg,
                    &fr,
                );
                let _ = fnode;
                actual_ins.push(fv);
                fr = vec![(last_node(cfg), false)];
                for (i, a) in args.iter().enumerate() {
                    let (v, n) = self.add_stmt_vertex(
                        pid,
                        VertexKind::ActualIn {
                            site,
                            slot: InSlot::Param(i),
                        },
                        cfg,
                        &fr,
                    );
                    cfg.uses[n.index()].extend(a.vars());
                    actual_ins.push(v);
                    fr = vec![(n, false)];
                }
                let (cv, cn) =
                    self.add_stmt_vertex(pid, VertexKind::Call { stmt: s.id, site }, cfg, &fr);
                self.sdg.call_sites.push(CallSite {
                    id: site,
                    caller: pid,
                    callee: CalleeKind::Library(LibFn::Printf),
                    stmt: s.id,
                    call_vertex: cv,
                    actual_ins,
                    actual_outs: Vec::new(),
                });
                Ok(vec![(cn, false)])
            }
            StmtKind::Scanf {
                targets, assign_to, ..
            } => {
                let site = CallSiteId(self.sdg.call_sites.len() as u32);
                let mut fr = frontier;
                let mut actual_ins = Vec::new();
                let (fv, _) = self.add_stmt_vertex(
                    pid,
                    VertexKind::ActualIn {
                        site,
                        slot: InSlot::Format,
                    },
                    cfg,
                    &fr,
                );
                actual_ins.push(fv);
                fr = vec![(last_node(cfg), false)];
                let (cv, cn) =
                    self.add_stmt_vertex(pid, VertexKind::Call { stmt: s.id, site }, cfg, &fr);
                cfg.uses[cn.index()].push(STDIN.to_string());
                cfg.defs[cn.index()].push(Def {
                    var: STDIN.to_string(),
                    kills: true,
                });
                fr = vec![(cn, false)];
                let mut actual_outs = Vec::new();
                for (i, t) in targets.iter().enumerate() {
                    let (v, n) = self.add_stmt_vertex(
                        pid,
                        VertexKind::ActualOut {
                            site,
                            slot: OutSlot::ScanTarget(i),
                        },
                        cfg,
                        &fr,
                    );
                    cfg.defs[n.index()].push(Def {
                        var: t.clone(),
                        kills: true,
                    });
                    actual_outs.push(v);
                    fr = vec![(n, false)];
                }
                if let Some(t) = assign_to {
                    let (v, n) = self.add_stmt_vertex(
                        pid,
                        VertexKind::ActualOut {
                            site,
                            slot: OutSlot::Ret,
                        },
                        cfg,
                        &fr,
                    );
                    cfg.defs[n.index()].push(Def {
                        var: t.clone(),
                        kills: true,
                    });
                    actual_outs.push(v);
                    fr = vec![(n, false)];
                }
                self.sdg.call_sites.push(CallSite {
                    id: site,
                    caller: pid,
                    callee: CalleeKind::Library(LibFn::Scanf),
                    stmt: s.id,
                    call_vertex: cv,
                    actual_ins,
                    actual_outs,
                });
                Ok(fr)
            }
            StmtKind::Exit { code } => {
                let site = CallSiteId(self.sdg.call_sites.len() as u32);
                let (av, an) = self.add_stmt_vertex(
                    pid,
                    VertexKind::ActualIn {
                        site,
                        slot: InSlot::Param(0),
                    },
                    cfg,
                    &frontier,
                );
                cfg.uses[an.index()].extend(code.vars());
                let (cv, cn) = self.add_stmt_vertex(
                    pid,
                    VertexKind::Call { stmt: s.id, site },
                    cfg,
                    &vec![(an, false)],
                );
                self.sdg.call_sites.push(CallSite {
                    id: site,
                    caller: pid,
                    callee: CalleeKind::Library(LibFn::Exit),
                    stmt: s.id,
                    call_vertex: cv,
                    actual_ins: vec![av],
                    actual_outs: Vec::new(),
                });
                // Terminates the program: real edge to exit, augmented
                // fall-through.
                let exit = cfg.exit;
                cfg.graph.add_edge_unique(cn, exit);
                Ok(vec![(cn, true)])
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                let (_, pn) =
                    self.add_stmt_vertex(pid, VertexKind::Predicate { stmt: s.id }, cfg, &frontier);
                cfg.uses[pn.index()].extend(cond.vars());
                let mut out = self.build_block(pid, then_block, vec![(pn, false)], cfg, loops)?;
                match else_block {
                    Some(e) => {
                        let e_out = self.build_block(pid, e, vec![(pn, false)], cfg, loops)?;
                        out.extend(e_out);
                    }
                    None => out.push((pn, false)),
                }
                Ok(out)
            }
            StmtKind::While { cond, body } => {
                let (_, head) =
                    self.add_stmt_vertex(pid, VertexKind::Predicate { stmt: s.id }, cfg, &frontier);
                cfg.uses[head.index()].extend(cond.vars());
                loops.push(LoopCtx {
                    head,
                    breaks: Vec::new(),
                });
                let body_out = self.build_block(pid, body, vec![(head, false)], cfg, loops)?;
                connect(cfg, &body_out, head);
                let ctx = loops.pop().expect("loop ctx");
                let mut out = vec![(head, false)];
                out.extend(ctx.breaks);
                Ok(out)
            }
            StmtKind::Return { value } => {
                let (_, n) =
                    self.add_stmt_vertex(pid, VertexKind::Jump { stmt: s.id }, cfg, &frontier);
                if let Some(e) = value {
                    cfg.uses[n.index()].extend(e.vars());
                    cfg.defs[n.index()].push(Def {
                        var: RET_VAR.to_string(),
                        kills: true,
                    });
                }
                let fo_head = cfg.fo_head;
                cfg.graph.add_edge_unique(n, fo_head);
                Ok(vec![(n, true)])
            }
            StmtKind::Break => {
                let (_, n) =
                    self.add_stmt_vertex(pid, VertexKind::Jump { stmt: s.id }, cfg, &frontier);
                loops
                    .last_mut()
                    .expect("break outside loop rejected by sema")
                    .breaks
                    .push((n, false));
                Ok(vec![(n, true)])
            }
            StmtKind::Continue => {
                let (_, n) =
                    self.add_stmt_vertex(pid, VertexKind::Jump { stmt: s.id }, cfg, &frontier);
                let head = loops
                    .last()
                    .expect("continue outside loop rejected by sema")
                    .head;
                cfg.graph.add_edge_unique(n, head);
                Ok(vec![(n, true)])
            }
        }
    }

    fn build_user_call(
        &mut self,
        pid: ProcId,
        s: &Stmt,
        c: &specslice_lang::ast::CallStmt,
        frontier: Frontier,
        cfg: &mut ProcCfg,
    ) -> Result<Frontier, SdgError> {
        let callee_name = match &c.callee {
            Callee::Named(n) => n.clone(),
            Callee::Indirect(v) => {
                return Err(SdgError::new(format!(
                    "indirect call through `{v}` not lowered"
                )))
            }
        };
        let callee_pid = *self
            .sdg
            .proc_by_name
            .get(&callee_name)
            .ok_or_else(|| SdgError::new(format!("unknown callee `{callee_name}`")))?;
        let callee_fn = self.func(callee_pid);
        let layout = self.layouts[&callee_name].clone();
        let must = self.summaries[&callee_name].must_mod.clone();
        let must_ret = self.summaries[&callee_name].must_ret;
        let site = CallSiteId(self.sdg.call_sites.len() as u32);

        let mut fr = frontier;
        let mut actual_ins = Vec::new();
        for slot in &layout.in_slots {
            let (v, n) = self.add_stmt_vertex(
                pid,
                VertexKind::ActualIn {
                    site,
                    slot: slot.clone(),
                },
                cfg,
                &fr,
            );
            match slot {
                InSlot::Param(i) => {
                    let arg = &c.args[*i];
                    match callee_fn.params[*i].mode {
                        // By-value (and fnptr) actuals read the expression.
                        ParamMode::Value | ParamMode::FnPtr { .. } => {
                            cfg.uses[n.index()].extend(arg.vars())
                        }
                        // By-ref actuals pass the current value in.
                        ParamMode::Ref => cfg.uses[n.index()].extend(arg.vars()),
                    }
                }
                InSlot::Global(g) => cfg.uses[n.index()].push(g.clone()),
                InSlot::Format => {}
            }
            actual_ins.push(v);
            fr = vec![(n, false)];
        }

        let (cv, cn) = self.add_stmt_vertex(pid, VertexKind::Call { stmt: s.id, site }, cfg, &fr);
        fr = vec![(cn, false)];

        let mut actual_outs = Vec::new();
        for slot in &layout.out_slots {
            let (v, n) = self.add_stmt_vertex(
                pid,
                VertexKind::ActualOut {
                    site,
                    slot: slot.clone(),
                },
                cfg,
                &fr,
            );
            match slot {
                OutSlot::Ret => {
                    if let Some(t) = &c.assign_to {
                        cfg.defs[n.index()].push(Def {
                            var: t.clone(),
                            // A value-less `return;` path leaves the target
                            // untouched, so the definition only kills when
                            // the callee definitely returns a value.
                            kills: must_ret,
                        });
                    }
                }
                OutSlot::RefParam(i) => {
                    if let Some(Expr::Var(av)) = c.args.get(*i) {
                        cfg.defs[n.index()].push(Def {
                            var: av.clone(),
                            kills: must.contains(&Location::Param(*i)),
                        });
                    }
                }
                OutSlot::Global(g) => {
                    cfg.defs[n.index()].push(Def {
                        var: g.clone(),
                        kills: must.contains(&Location::Global(g.clone())),
                    });
                }
                OutSlot::ScanTarget(_) => unreachable!("user calls have no scan targets"),
            }
            actual_outs.push(v);
            fr = vec![(n, false)];
        }

        self.sdg.call_sites.push(CallSite {
            id: site,
            caller: pid,
            callee: CalleeKind::User(callee_pid),
            stmt: s.id,
            call_vertex: cv,
            actual_ins,
            actual_outs,
        });
        Ok(fr)
    }

    /// Ferrante–Ottenstein–Warren control dependence on the augmented CFG,
    /// with HRB re-anchoring of parameter vertices.
    fn control_dependence(&mut self, pid: ProcId, cfg: &ProcCfg) {
        let mut ag = cfg.graph.clone();
        for &(f, t) in &cfg.augmented {
            ag.add_edge_unique(f, t);
        }
        let pdt = DominatorTree::postdominators(&ag, cfg.exit);

        fn is_param_vertex(sdg: &Sdg, v: VertexId) -> bool {
            matches!(
                sdg.vertex(v).kind,
                VertexKind::ActualIn { .. }
                    | VertexKind::ActualOut { .. }
                    | VertexKind::FormalIn { .. }
                    | VertexKind::FormalOut { .. }
            )
        }

        for u in ag.nodes() {
            if ag.successors(u).len() < 2 {
                continue;
            }
            let stop = pdt.idom(u);
            for &w in ag.successors(u) {
                if !pdt.is_reachable(w) {
                    continue;
                }
                let mut cur = Some(w);
                while let Some(c) = cur {
                    if Some(c) == stop {
                        break;
                    }
                    // c is control dependent on u.
                    if c != u {
                        if let (Some(uv), Some(cv)) = (cfg.vertex[u.index()], cfg.vertex[c.index()])
                        {
                            if !is_param_vertex(&self.sdg, cv) {
                                self.sdg.add_edge(uv, cv, EdgeKind::Control);
                            }
                        }
                    }
                    cur = pdt.idom(c);
                }
            }
        }

        // Re-anchor parameter vertices (HRB convention).
        let proc = self.sdg.proc(pid).clone();
        for &fi in proc.formal_ins.iter().chain(&proc.formal_outs) {
            self.sdg.add_edge(proc.entry, fi, EdgeKind::Control);
        }
        let sites: Vec<CallSite> = self
            .sdg
            .call_sites
            .iter()
            .filter(|c| c.caller == pid)
            .cloned()
            .collect();
        for site in sites {
            for &a in site.actual_ins.iter().chain(&site.actual_outs) {
                self.sdg.add_edge(site.call_vertex, a, EdgeKind::Control);
            }
            // §6.1: library calls keep all their actuals.
            if matches!(site.callee, CalleeKind::Library(_)) {
                for &a in &site.actual_ins {
                    self.sdg.add_edge(a, site.call_vertex, EdgeKind::LibActual);
                }
            }
        }
    }

    /// Reaching definitions over the real CFG → flow-dependence edges.
    fn flow_dependence(&mut self, cfg: &ProcCfg) {
        // Enumerate definition sites.
        #[derive(Clone)]
        struct Site {
            node: NodeId,
            var: String,
            kills: bool,
        }
        let mut sites: Vec<Site> = Vec::new();
        let mut sites_of_var: HashMap<&str, Vec<usize>> = HashMap::new();
        for n in cfg.graph.nodes() {
            for d in &cfg.defs[n.index()] {
                sites.push(Site {
                    node: n,
                    var: d.var.clone(),
                    kills: d.kills,
                });
            }
        }
        for (i, s) in sites.iter().enumerate() {
            sites_of_var.entry(s.var.as_str()).or_default().push(i);
        }
        let nsites = sites.len();
        let words = nsites.div_ceil(64);
        let zero = vec![0u64; words];

        // GEN and KILL per node.
        let n_nodes = cfg.graph.node_count();
        let mut gen = vec![zero.clone(); n_nodes];
        let mut kill = vec![zero.clone(); n_nodes];
        for (i, s) in sites.iter().enumerate() {
            gen[s.node.index()][i / 64] |= 1u64 << (i % 64);
            if s.kills {
                for &j in &sites_of_var[s.var.as_str()] {
                    if j != i {
                        kill[s.node.index()][j / 64] |= 1u64 << (j % 64);
                    }
                }
            }
        }

        let mut inn = vec![zero.clone(); n_nodes];
        let mut out = vec![zero.clone(); n_nodes];
        let order = cfg.graph.reverse_post_order(cfg.entry);
        loop {
            let mut changed = false;
            for &n in &order {
                let ni = n.index();
                let mut acc = zero.clone();
                for &p in cfg.graph.predecessors(n) {
                    for w in 0..words {
                        acc[w] |= out[p.index()][w];
                    }
                }
                if acc != inn[ni] {
                    inn[ni] = acc;
                    changed = true;
                }
                let mut o = inn[ni].clone();
                for w in 0..words {
                    o[w] = (o[w] & !kill[ni][w]) | gen[ni][w];
                }
                if o != out[ni] {
                    out[ni] = o;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Flow edges: def site reaching a use of the same variable.
        for n in cfg.graph.nodes() {
            let Some(use_vertex) = cfg.vertex[n.index()] else {
                continue;
            };
            for u in &cfg.uses[n.index()] {
                let Some(cands) = sites_of_var.get(u.as_str()) else {
                    continue;
                };
                for &i in cands {
                    if inn[n.index()][i / 64] >> (i % 64) & 1 == 1 {
                        let def_vertex =
                            cfg.vertex[sites[i].node.index()].expect("defs live on vertices");
                        self.sdg.add_edge(def_vertex, use_vertex, EdgeKind::Flow);
                    }
                }
            }
        }
    }

    /// Call, parameter-in, and parameter-out edges.
    fn connect_call_sites(&mut self) {
        let sites = self.sdg.call_sites.clone();
        for site in &sites {
            let CalleeKind::User(callee) = site.callee else {
                continue;
            };
            let callee_proc = self.sdg.proc(callee).clone();
            self.sdg
                .add_edge(site.call_vertex, callee_proc.entry, EdgeKind::Call);
            for (&ai, &fi) in site.actual_ins.iter().zip(&callee_proc.formal_ins) {
                debug_assert_eq!(self.sdg.in_slot(ai), self.sdg.in_slot(fi));
                self.sdg.add_edge(ai, fi, EdgeKind::ParamIn);
            }
            for (&ao, &fo) in site.actual_outs.iter().zip(&callee_proc.formal_outs) {
                debug_assert_eq!(self.sdg.out_slot(ao), self.sdg.out_slot(fo));
                self.sdg.add_edge(fo, ao, EdgeKind::ParamOut);
            }
        }
    }
}

fn connect(cfg: &mut ProcCfg, frontier: &Frontier, to: NodeId) {
    for &(src, aug) in frontier {
        if aug {
            if !cfg.augmented.contains(&(src, to)) {
                cfg.augmented.push((src, to));
            }
        } else {
            cfg.graph.add_edge_unique(src, to);
        }
    }
}

fn last_node(cfg: &ProcCfg) -> NodeId {
    NodeId(cfg.graph.node_count() as u32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    pub(crate) const FIG1: &str = r#"
        int g1, g2, g3;
        void p(int a, int b) {
            g1 = a;
            g2 = b;
            g3 = g2;
        }
        int main() {
            g2 = 100;
            p(g2, 2);
            p(g2, 3);
            p(4, g1 + g2);
            printf("%d", g2);
        }
    "#;

    fn sdg_of(src: &str) -> Sdg {
        build_sdg(&frontend(src).unwrap()).unwrap()
    }

    #[test]
    fn fig1_sdg_shape_matches_fig3() {
        let sdg = sdg_of(FIG1);
        let p = sdg.proc_named("p").unwrap();
        // Fig. 3: formal-ins p2 (a), p3 (b); formal-outs p7 (g3), p8 (g2), p9 (g1).
        assert_eq!(p.formal_ins.len(), 2);
        assert_eq!(p.formal_outs.len(), 3);
        // 3 user call sites + 1 printf site.
        assert_eq!(sdg.call_sites.len(), 4);
        let user_sites: Vec<_> = sdg
            .call_sites
            .iter()
            .filter(|c| matches!(c.callee, CalleeKind::User(_)))
            .collect();
        assert_eq!(user_sites.len(), 3);
        for c in user_sites {
            // Fig. 3: each call to p has 2 actual-ins and 3 actual-outs.
            assert_eq!(c.actual_ins.len(), 2);
            assert_eq!(c.actual_outs.len(), 3);
        }
        // printf("%d", g2): format + one arg.
        let pf = sdg
            .call_sites
            .iter()
            .find(|c| c.callee == CalleeKind::Library(LibFn::Printf))
            .unwrap();
        assert_eq!(pf.actual_ins.len(), 2);
    }

    #[test]
    fn fig1_vertex_count_matches_fig3() {
        // Fig. 3 has 23 vertices in main (m1..m23) and 9 in p (p1..p9).
        let sdg = sdg_of(FIG1);
        let main = sdg.proc_named("main").unwrap();
        let p = sdg.proc_named("p").unwrap();
        assert_eq!(p.vertices.len(), 9, "p: {:?}", p.vertices.len());
        assert_eq!(main.vertices.len(), 23, "main: {:?}", main.vertices.len());
    }

    #[test]
    fn interprocedural_edges_fig1() {
        let sdg = sdg_of(FIG1);
        let p = sdg.proc_named("p").unwrap();
        // Every user call site connects to p's entry.
        let call_edges: Vec<_> = sdg
            .call_sites
            .iter()
            .filter(|c| matches!(c.callee, CalleeKind::User(_)))
            .map(|c| {
                sdg.successors(c.call_vertex)
                    .iter()
                    .filter(|(t, k)| *k == EdgeKind::Call && *t == p.entry)
                    .count()
            })
            .collect();
        assert_eq!(call_edges, vec![1, 1, 1]);
        // Parameter-out edges: 3 formal-outs × 3 sites.
        let param_out_count: usize = p
            .formal_outs
            .iter()
            .map(|&fo| {
                sdg.successors(fo)
                    .iter()
                    .filter(|(_, k)| *k == EdgeKind::ParamOut)
                    .count()
            })
            .sum();
        assert_eq!(param_out_count, 9);
    }

    #[test]
    fn flow_dependence_inside_p() {
        // g2 = b flows to g3 = g2.
        let sdg = sdg_of(FIG1);
        let p = sdg.proc_named("p").unwrap();
        let stmts: Vec<VertexId> = p
            .vertices
            .iter()
            .copied()
            .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .collect();
        assert_eq!(stmts.len(), 3);
        // stmts in order: g1 = a; g2 = b; g3 = g2.
        let g2b = stmts[1];
        let g3g2 = stmts[2];
        assert!(
            sdg.successors(g2b)
                .iter()
                .any(|&(t, k)| t == g3g2 && k == EdgeKind::Flow),
            "missing flow edge g2=b → g3=g2"
        );
    }

    #[test]
    fn control_dependence_on_predicates() {
        let sdg = sdg_of(
            r#"
            int g;
            int main() {
                int m;
                m = 1;
                if (m > 0) { g = 2; }
                printf("%d", g);
                return 0;
            }
            "#,
        );
        let main = sdg.proc_named("main").unwrap();
        let pred = main
            .vertices
            .iter()
            .copied()
            .find(|&v| matches!(sdg.vertex(v).kind, VertexKind::Predicate { .. }))
            .unwrap();
        // The g = 2 statement is control dependent on the predicate.
        let has_cd = sdg.successors(pred).iter().any(|&(t, k)| {
            k == EdgeKind::Control && matches!(sdg.vertex(t).kind, VertexKind::Statement { .. })
        });
        assert!(has_cd);
        // The predicate is control dependent on entry.
        assert!(sdg
            .predecessors(pred)
            .iter()
            .any(|&(f, k)| f == main.entry && k == EdgeKind::Control));
    }

    #[test]
    fn early_return_guards_later_statements() {
        let sdg = sdg_of(
            r#"
            int g;
            int main() {
                int m;
                m = 0;
                if (m == 0) { return 1; }
                g = 5;
                printf("%d", g);
                return 0;
            }
            "#,
        );
        let main = sdg.proc_named("main").unwrap();
        let jump = main
            .vertices
            .iter()
            .copied()
            .find(|&v| matches!(sdg.vertex(v).kind, VertexKind::Jump { .. }))
            .unwrap();
        // g = 5 must be control dependent on the early return (Ball–Horwitz).
        let g5 = main.vertices.iter().copied().find(|&v| {
            matches!(sdg.vertex(v).kind, VertexKind::Statement { .. })
                && sdg
                    .predecessors(v)
                    .iter()
                    .any(|&(f, k)| f == jump && k == EdgeKind::Control)
        });
        assert!(g5.is_some(), "no statement control-dependent on the return");
    }

    #[test]
    fn libactual_edges_present() {
        let sdg = sdg_of(FIG1);
        let pf = sdg
            .call_sites
            .iter()
            .find(|c| c.callee == CalleeKind::Library(LibFn::Printf))
            .unwrap();
        for &a in &pf.actual_ins {
            assert!(sdg
                .successors(a)
                .iter()
                .any(|&(t, k)| t == pf.call_vertex && k == EdgeKind::LibActual));
        }
    }

    #[test]
    fn rejects_indirect_calls() {
        let p = frontend(
            r#"
            int f(int a, int b) { return a; }
            int main() {
                int (*q)(int, int);
                int x;
                q = f;
                x = q(1, 2);
                return x;
            }
            "#,
        )
        .unwrap();
        let err = build_sdg(&p).unwrap_err();
        assert!(err.message().contains("indirect"), "{err}");
    }

    #[test]
    fn scanf_chain_via_stdin() {
        let sdg = sdg_of(
            r#"
            int main() {
                int a;
                int b;
                scanf("%d", &a);
                scanf("%d", &b);
                printf("%d", b);
                return 0;
            }
            "#,
        );
        // The second scanf's call vertex must be flow-dependent on the first
        // (through $stdin), preserving read order in slices.
        let scanfs: Vec<&CallSite> = sdg
            .call_sites
            .iter()
            .filter(|c| c.callee == CalleeKind::Library(LibFn::Scanf))
            .collect();
        assert_eq!(scanfs.len(), 2);
        assert!(sdg
            .successors(scanfs[0].call_vertex)
            .iter()
            .any(|&(t, k)| t == scanfs[1].call_vertex && k == EdgeKind::Flow));
    }

    #[test]
    fn return_value_flows_to_formal_out() {
        let sdg = sdg_of(
            r#"
            int add(int a, int b) { return a + b; }
            int main() { int x; x = add(1, 2); printf("%d", x); return 0; }
            "#,
        );
        let add = sdg.proc_named("add").unwrap();
        let ret_fo = *add.formal_outs.last().unwrap();
        assert_eq!(sdg.out_slot(ret_fo), Some(&OutSlot::Ret));
        // The return jump vertex flows into the formal-out.
        assert!(sdg
            .predecessors(ret_fo)
            .iter()
            .any(|&(f, k)| k == EdgeKind::Flow
                && matches!(sdg.vertex(f).kind, VertexKind::Jump { .. })));
        // And the actual-out at the call site defines x, which flows to printf's arg.
        let call = sdg
            .call_sites
            .iter()
            .find(|c| matches!(c.callee, CalleeKind::User(_)))
            .unwrap();
        let ao = call.actual_outs[0];
        assert!(sdg.successors(ao).iter().any(|&(_, k)| k == EdgeKind::Flow));
    }
}
