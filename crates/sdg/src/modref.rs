//! Interprocedural MayMod / MustMod / upward-exposed-reference analysis.
//!
//! Decides which non-local locations get formal-in and formal-out vertices
//! (Cooper–Kennedy-style GMOD/GREF, refined with MustMod as in the paper's
//! SDG definition): a procedure `p` has
//!
//! * a formal-in for global `g` iff `g ∈ UERef(p) ∪ (MayMod(p) ∖ MustMod(p))`
//!   — `g`'s incoming value may be observed, either by a use that no
//!   definite write precedes, or because `p` may leave `g` untouched on some
//!   path while writing it on another;
//! * a formal-out for `g` iff `g ∈ MayMod(p)`.
//!
//! The `scanf` input stream is modeled as a synthetic global [`STDIN`] that
//! every `scanf` both reads and writes, so executable slices preserve the
//! relative order of input operations.

use crate::cfg::StmtCfg;
use specslice_graphs::NodeId;
use specslice_lang::ast::{Expr, Function, ParamMode, Program, Stmt, StmtKind};
use std::collections::{BTreeSet, HashMap};

/// The synthetic global modeling the `scanf` input stream.
pub const STDIN: &str = "$stdin";

/// The synthetic variable carrying return values (shared with the builder).
pub const RET: &str = "$ret";

/// A location visible across procedure boundaries.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Location {
    /// A global variable (including [`STDIN`]).
    Global(String),
    /// The `i`-th parameter (only meaningful for by-reference parameters).
    Param(usize),
}

/// Per-procedure analysis results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModRefInfo {
    /// Locations the procedure may modify (transitively).
    pub may_mod: BTreeSet<Location>,
    /// Locations the procedure definitely modifies on every path to exit.
    pub must_mod: BTreeSet<Location>,
    /// Globals with an upward-exposed use (read before any definite write).
    pub ue_ref: BTreeSet<String>,
    /// Whether every path to exit passes a `return e;` — when false, the
    /// return-value actual-out is only a *may*-definition of its target
    /// (MiniC, like C89, allows int functions to return without a value).
    pub must_ret: bool,
}

impl ModRefInfo {
    /// Globals needing a formal-in vertex: `UERef ∪ (MayMod ∖ MustMod)`.
    pub fn globals_in(&self) -> BTreeSet<String> {
        let mut out = self.ue_ref.clone();
        for loc in &self.may_mod {
            if let Location::Global(g) = loc {
                if !self.must_mod.contains(loc) {
                    out.insert(g.clone());
                }
            }
        }
        out
    }

    /// Globals needing a formal-out vertex: `MayMod` globals.
    pub fn globals_out(&self) -> BTreeSet<String> {
        self.may_mod
            .iter()
            .filter_map(|l| match l {
                Location::Global(g) => Some(g.clone()),
                Location::Param(_) => None,
            })
            .collect()
    }

    /// By-reference parameter indices the procedure may modify.
    pub fn ref_params_out(&self) -> BTreeSet<usize> {
        self.may_mod
            .iter()
            .filter_map(|l| match l {
                Location::Param(i) => Some(*i),
                Location::Global(_) => None,
            })
            .collect()
    }
}

/// Whether the program performs any input (decides if [`STDIN`] exists).
pub fn uses_scanf(program: &Program) -> bool {
    let mut found = false;
    program.visit_all(|_, s| {
        if matches!(s.kind, StmtKind::Scanf { .. }) {
            found = true;
        }
    });
    found
}

/// Statement-level effects, parameterized by the current summaries.
struct Effects {
    may_defs: Vec<String>,
    must_defs: Vec<String>,
    uses: Vec<String>,
}

fn expr_vars(e: &Expr) -> Vec<String> {
    e.vars()
}

fn stmt_effects(s: &Stmt, program: &Program, summaries: &HashMap<String, ModRefInfo>) -> Effects {
    let mut eff = Effects {
        may_defs: Vec::new(),
        must_defs: Vec::new(),
        uses: Vec::new(),
    };
    match &s.kind {
        StmtKind::Decl {
            name,
            init: Some(e),
            ..
        }
        | StmtKind::Assign { name, value: e } => {
            eff.may_defs.push(name.clone());
            eff.must_defs.push(name.clone());
            eff.uses.extend(expr_vars(e));
        }
        StmtKind::Decl { init: None, .. } => {}
        StmtKind::Scanf {
            targets, assign_to, ..
        } => {
            for t in targets {
                eff.may_defs.push(t.clone());
                eff.must_defs.push(t.clone());
            }
            if let Some(t) = assign_to {
                eff.may_defs.push(t.clone());
                eff.must_defs.push(t.clone());
            }
            eff.may_defs.push(STDIN.to_string());
            eff.must_defs.push(STDIN.to_string());
            eff.uses.push(STDIN.to_string());
        }
        StmtKind::Printf { args, .. } => {
            for a in args {
                eff.uses.extend(expr_vars(a));
            }
        }
        StmtKind::Exit { code } => eff.uses.extend(expr_vars(code)),
        StmtKind::If { cond, .. } | StmtKind::While { cond, .. } => {
            eff.uses.extend(expr_vars(cond));
        }
        StmtKind::Return { value } => {
            if let Some(e) = value {
                eff.uses.extend(expr_vars(e));
                eff.may_defs.push(RET.to_string());
                eff.must_defs.push(RET.to_string());
            }
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Call(c) => {
            for a in &c.args {
                eff.uses.extend(expr_vars(a));
            }
            if let Some(t) = &c.assign_to {
                eff.may_defs.push(t.clone());
                // The result is definitely assigned only when the callee
                // definitely returns a value.
                let callee_must_ret = summaries
                    .get(c.callee.name())
                    .map(|s| s.must_ret)
                    .unwrap_or(false);
                if callee_must_ret {
                    eff.must_defs.push(t.clone());
                }
            }
            let callee_name = c.callee.name();
            if let Some(callee) = program.function(callee_name) {
                let summary = summaries.get(callee_name).cloned().unwrap_or_default();
                for loc in &summary.may_mod {
                    match loc {
                        Location::Global(g) => eff.may_defs.push(g.clone()),
                        Location::Param(i) => {
                            if let Some(Expr::Var(v)) = c.args.get(*i) {
                                eff.may_defs.push(v.clone());
                            }
                        }
                    }
                }
                for loc in &summary.must_mod {
                    match loc {
                        Location::Global(g) => eff.must_defs.push(g.clone()),
                        Location::Param(i) => {
                            if let Some(Expr::Var(v)) = c.args.get(*i) {
                                eff.must_defs.push(v.clone());
                            }
                        }
                    }
                }
                for g in &summary.ue_ref {
                    eff.uses.push(g.clone());
                }
                let _ = callee; // arity/ref-ness validated by sema
            }
        }
    }
    eff
}

fn is_global(program: &Program, name: &str, has_stdin: bool) -> bool {
    (has_stdin && name == STDIN) || program.is_global(name)
}

fn project(
    program: &Program,
    f: &Function,
    names: impl IntoIterator<Item = String>,
    has_stdin: bool,
) -> BTreeSet<Location> {
    let mut out = BTreeSet::new();
    for n in names {
        if is_global(program, &n, has_stdin) {
            out.insert(Location::Global(n));
        } else if let Some((i, _)) = f
            .params
            .iter()
            .enumerate()
            .find(|(_, p)| p.name == n && p.mode == ParamMode::Ref)
        {
            out.insert(Location::Param(i));
        }
    }
    out
}

/// Runs the interprocedural fixpoint, returning per-procedure summaries.
pub fn analyze(program: &Program, cfgs: &HashMap<String, StmtCfg>) -> HashMap<String, ModRefInfo> {
    let has_stdin = uses_scanf(program);
    // Universe for the optimistic MustMod initialization.
    let mut summaries: HashMap<String, ModRefInfo> = HashMap::new();
    for f in &program.functions {
        let mut top = BTreeSet::new();
        for g in &program.globals {
            top.insert(Location::Global(g.clone()));
        }
        if has_stdin {
            top.insert(Location::Global(STDIN.to_string()));
        }
        for (i, p) in f.params.iter().enumerate() {
            if p.mode == ParamMode::Ref {
                top.insert(Location::Param(i));
            }
        }
        summaries.insert(
            f.name.clone(),
            ModRefInfo {
                may_mod: BTreeSet::new(),
                must_mod: top,
                ue_ref: BTreeSet::new(),
                must_ret: true,
            },
        );
    }

    loop {
        let mut changed = false;
        for f in &program.functions {
            let cfg = &cfgs[&f.name];
            let next = analyze_proc(program, f, cfg, &summaries, has_stdin);
            let cur = summaries.get_mut(&f.name).expect("summary present");
            if *cur != next {
                *cur = next;
                changed = true;
            }
        }
        if !changed {
            return summaries;
        }
    }
}

fn analyze_proc(
    program: &Program,
    f: &Function,
    cfg: &StmtCfg,
    summaries: &HashMap<String, ModRefInfo>,
    has_stdin: bool,
) -> ModRefInfo {
    // Gather per-node effects.
    let mut stmt_by_id: HashMap<specslice_lang::StmtId, &Stmt> = HashMap::new();
    f.body.visit(&mut |s| {
        stmt_by_id.insert(s.id, s);
    });
    let n = cfg.real.node_count();
    let mut effects: Vec<Option<Effects>> = Vec::with_capacity(n);
    for i in 0..n {
        let node = NodeId(i as u32);
        effects.push(
            cfg.stmt(node)
                .and_then(|sid| stmt_by_id.get(&sid))
                .map(|s| stmt_effects(s, program, summaries)),
        );
    }

    // MayMod: flow-insensitive union.
    let mut may_names: Vec<String> = Vec::new();
    for e in effects.iter().flatten() {
        may_names.extend(e.may_defs.iter().cloned());
    }
    let may_mod = project(program, f, may_names, has_stdin);

    // Must-defined forward analysis over real edges. `None` = ⊤ (unvisited).
    let mut inn: Vec<Option<BTreeSet<String>>> = vec![None; n];
    inn[cfg.entry.index()] = Some(BTreeSet::new());
    let order = cfg.real.reverse_post_order(cfg.entry);
    loop {
        let mut changed = false;
        for &node in &order {
            if node == cfg.entry {
                continue;
            }
            // meet over predecessors' OUT sets
            let mut acc: Option<BTreeSet<String>> = None;
            for &p in cfg.real.predecessors(node) {
                let Some(pin) = &inn[p.index()] else { continue };
                let mut pout = pin.clone();
                if let Some(e) = &effects[p.index()] {
                    pout.extend(e.must_defs.iter().cloned());
                }
                acc = Some(match acc {
                    None => pout,
                    Some(a) => a.intersection(&pout).cloned().collect(),
                });
            }
            if let Some(newin) = acc {
                if inn[node.index()].as_ref() != Some(&newin) {
                    inn[node.index()] = Some(newin);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let (must_mod, must_ret) = match &inn[cfg.exit.index()] {
        Some(d) => (
            project(program, f, d.iter().cloned(), has_stdin),
            d.contains(RET),
        ),
        None => {
            // Exit unreachable (e.g. infinite loop): every location is
            // vacuously must-modified; keep the optimistic universe.
            (
                summaries
                    .get(&f.name)
                    .map(|s| s.must_mod.clone())
                    .unwrap_or_default(),
                true,
            )
        }
    };

    // Upward-exposed global references.
    let mut ue_ref = BTreeSet::new();
    for i in 0..n {
        let Some(e) = &effects[i] else { continue };
        let Some(d) = &inn[i] else { continue }; // unreachable node
        for u in &e.uses {
            if is_global(program, u, has_stdin) && !d.contains(u) {
                ue_ref.insert(u.clone());
            }
        }
    }

    ModRefInfo {
        may_mod,
        must_mod,
        ue_ref,
        must_ret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_stmt_cfg;
    use specslice_lang::frontend;

    fn run(src: &str) -> (specslice_lang::Program, HashMap<String, ModRefInfo>) {
        let p = frontend(src).unwrap();
        let cfgs: HashMap<String, StmtCfg> = p
            .functions
            .iter()
            .map(|f| (f.name.clone(), build_stmt_cfg(f)))
            .collect();
        let s = analyze(&p, &cfgs);
        (p, s)
    }

    fn g(name: &str) -> Location {
        Location::Global(name.to_string())
    }

    #[test]
    fn fig1_procedure_p() {
        // p: g1 = a; g2 = b; g3 = g2;  — straight line.
        let (_, s) = run(r#"
            int g1, g2, g3;
            void p(int a, int b) { g1 = a; g2 = b; g3 = g2; }
            int main() { g2 = 100; p(g2, 2); printf("%d", g2); return 0; }
            "#);
        let p = &s["p"];
        assert_eq!(p.may_mod, [g("g1"), g("g2"), g("g3")].into_iter().collect());
        assert_eq!(p.may_mod, p.must_mod);
        // g2 is used in `g3 = g2` but defined just before on the only path.
        assert!(p.ue_ref.is_empty());
        // Hence formal-ins: no globals (matches Fig. 3: only a and b).
        assert!(p.globals_in().is_empty());
        assert_eq!(
            p.globals_out(),
            ["g1", "g2", "g3"].map(String::from).into_iter().collect()
        );
    }

    #[test]
    fn early_return_breaks_must_mod() {
        // The Fig. 13 pattern: `if (m == 0) return;` makes MustMod empty.
        let (_, s) = run(r#"
            int g1;
            void pk(int m) {
                if (m == 0) { return; }
                g1 = m;
            }
            int main() { pk(3); printf("%d", g1); return 0; }
            "#);
        let pk = &s["pk"];
        assert_eq!(pk.may_mod, [g("g1")].into_iter().collect());
        assert!(pk.must_mod.is_empty());
        // g1 ∈ MayMod \ MustMod → needs a formal-in.
        assert!(pk.globals_in().contains("g1"));
    }

    #[test]
    fn transitive_mod_through_calls() {
        let (_, s) = run(r#"
            int g;
            void inner() { g = 1; }
            void outer() { inner(); }
            int main() { outer(); printf("%d", g); return 0; }
            "#);
        assert!(s["outer"].may_mod.contains(&g("g")));
        assert!(s["outer"].must_mod.contains(&g("g")));
        assert!(s["main"].may_mod.contains(&g("g")));
    }

    #[test]
    fn ue_ref_via_calls_respects_must_defs() {
        let (_, s) = run(r#"
            int g;
            int reader() { return g; }
            void caller1() { int x; x = reader(); }          // g upward-exposed
            void caller2() { g = 1; int x; x = reader(); }   // g defined first
            int main() { caller1(); caller2(); printf("%d", g); return 0; }
            "#);
        assert!(s["reader"].ue_ref.contains("g"));
        assert!(s["caller1"].ue_ref.contains("g"));
        assert!(!s["caller2"].ue_ref.contains("g"));
    }

    #[test]
    fn ref_params_propagate_to_actuals() {
        let (_, s) = run(r#"
            void bump(int& x) { x = x + 1; }
            void twice(int& y) { bump(y); bump(y); }
            int main() { int v; v = 0; twice(v); printf("%d", v); return 0; }
            "#);
        assert_eq!(
            s["bump"].may_mod,
            [Location::Param(0)].into_iter().collect()
        );
        assert_eq!(
            s["bump"].must_mod,
            [Location::Param(0)].into_iter().collect()
        );
        assert_eq!(
            s["twice"].may_mod,
            [Location::Param(0)].into_iter().collect()
        );
        // main modifies only a local → nothing escapes.
        assert!(s["main"].may_mod.is_empty());
    }

    #[test]
    fn recursion_converges() {
        let (_, s) = run(r#"
            int g1, g2;
            void r(int k) {
                if (k > 0) {
                    g1 = g2;
                    r(k - 1);
                }
            }
            int main() { g2 = 1; r(3); printf("%d", g1); return 0; }
            "#);
        let r = &s["r"];
        assert!(r.may_mod.contains(&g("g1")));
        assert!(r.must_mod.is_empty()); // k == 0 path writes nothing
        assert!(r.ue_ref.contains("g2"));
        assert!(r.globals_in().contains("g1")); // may-but-not-must
        assert!(r.globals_in().contains("g2")); // upward-exposed
    }

    #[test]
    fn scanf_models_stdin() {
        let (_, s) = run(r#"
            void read(int& v) { scanf("%d", &v); }
            int main() { int a; read(a); printf("%d", a); return 0; }
            "#);
        assert!(s["read"].may_mod.contains(&g(STDIN)));
        assert!(s["read"].ue_ref.contains(STDIN));
        assert!(s["main"].may_mod.contains(&g(STDIN)));
    }

    #[test]
    fn mutual_recursion_converges() {
        let (_, s) = run(r#"
            int g;
            void a(int k) { if (k > 0) { b(k - 1); } }
            void b(int k) { g = k; if (k > 0) { a(k - 1); } }
            int main() { a(2); printf("%d", g); return 0; }
            "#);
        assert!(s["a"].may_mod.contains(&g("g")));
        assert!(s["b"].may_mod.contains(&g("g")));
        assert!(s["b"].must_mod.contains(&g("g")));
        assert!(s["a"].must_mod.is_empty());
    }
}
