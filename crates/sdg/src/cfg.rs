//! Statement-level control-flow graphs with Ball–Horwitz augmented edges.
//!
//! Each function gets a CFG whose nodes are its statements (plus entry and
//! exit). Two edge sets are kept:
//!
//! * **real** edges — actual control flow (used by the must-define and
//!   reaching-definition analyses);
//! * **augmented** edges — the Ball–Horwitz *fall-through* edges of jump
//!   statements (`return`, `break`, `continue`, `exit`), plus the standard
//!   `entry → exit` edge. Control dependence is computed on real ∪ augmented
//!   edges, which makes jumps pseudo-predicates so that slices retain the
//!   jumps that guard the statements they cut.

use specslice_graphs::{DiGraph, NodeId};
use specslice_lang::ast::{Block, Function, Stmt, StmtId, StmtKind};
use std::collections::HashMap;

/// A function's statement-level CFG.
#[derive(Clone, Debug)]
pub struct StmtCfg {
    /// Real control-flow edges.
    pub real: DiGraph,
    /// Augmented fall-through edges `(from, to)`.
    pub augmented: Vec<(NodeId, NodeId)>,
    /// Entry node.
    pub entry: NodeId,
    /// Exit node.
    pub exit: NodeId,
    /// Statement of each node (`None` for entry/exit).
    pub node_stmt: Vec<Option<StmtId>>,
    /// Node of each statement (statements without vertices — plain
    /// declarations — are absent).
    pub stmt_node: HashMap<StmtId, NodeId>,
}

impl StmtCfg {
    /// The combined graph (real + augmented edges) used for postdominators
    /// and control dependence.
    pub fn augmented_graph(&self) -> DiGraph {
        let mut g = self.real.clone();
        for &(f, t) in &self.augmented {
            g.add_edge_unique(f, t);
        }
        g
    }

    /// The statement anchored at `n`, if any.
    pub fn stmt(&self, n: NodeId) -> Option<StmtId> {
        self.node_stmt.get(n.index()).copied().flatten()
    }
}

/// A pending edge source: `(node, is_augmented)`.
type Frontier = Vec<(NodeId, bool)>;

struct Builder {
    real: DiGraph,
    augmented: Vec<(NodeId, NodeId)>,
    node_stmt: Vec<Option<StmtId>>,
    stmt_node: HashMap<StmtId, NodeId>,
    exit: NodeId,
}

struct LoopCtx {
    head: NodeId,
    breaks: Frontier,
}

impl Builder {
    fn add_node(&mut self, stmt: Option<StmtId>) -> NodeId {
        let n = self.real.add_node();
        self.node_stmt.push(stmt);
        if let Some(s) = stmt {
            self.stmt_node.insert(s, n);
        }
        n
    }

    fn connect(&mut self, frontier: &Frontier, to: NodeId) {
        for &(src, aug) in frontier {
            if aug {
                if !self.augmented.contains(&(src, to)) {
                    self.augmented.push((src, to));
                }
            } else {
                self.real.add_edge_unique(src, to);
            }
        }
    }

    fn build_block(
        &mut self,
        block: &Block,
        mut frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
    ) -> Frontier {
        for s in &block.stmts {
            frontier = self.build_stmt(s, frontier, loops);
        }
        frontier
    }

    fn build_stmt(&mut self, s: &Stmt, frontier: Frontier, loops: &mut Vec<LoopCtx>) -> Frontier {
        match &s.kind {
            StmtKind::Decl { init: None, .. } => frontier, // no vertex, no node
            StmtKind::Decl { init: Some(_), .. }
            | StmtKind::Assign { .. }
            | StmtKind::Call(_)
            | StmtKind::Printf { .. }
            | StmtKind::Scanf { .. } => {
                let n = self.add_node(Some(s.id));
                self.connect(&frontier, n);
                vec![(n, false)]
            }
            StmtKind::Exit { .. } => {
                // Terminates the program: real edge to exit, augmented
                // fall-through to the next statement.
                let n = self.add_node(Some(s.id));
                self.connect(&frontier, n);
                let exit = self.exit;
                self.real.add_edge_unique(n, exit);
                vec![(n, true)]
            }
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => {
                let pred = self.add_node(Some(s.id));
                self.connect(&frontier, pred);
                let mut out = self.build_block(then_block, vec![(pred, false)], loops);
                match else_block {
                    Some(e) => {
                        let else_out = self.build_block(e, vec![(pred, false)], loops);
                        out.extend(else_out);
                    }
                    None => out.push((pred, false)),
                }
                out
            }
            StmtKind::While { body, .. } => {
                let head = self.add_node(Some(s.id));
                self.connect(&frontier, head);
                loops.push(LoopCtx {
                    head,
                    breaks: Vec::new(),
                });
                let body_out = self.build_block(body, vec![(head, false)], loops);
                self.connect(&body_out, head);
                let ctx = loops.pop().expect("loop context");
                let mut out = vec![(head, false)];
                out.extend(ctx.breaks);
                out
            }
            StmtKind::Return { .. } => {
                let n = self.add_node(Some(s.id));
                self.connect(&frontier, n);
                let exit = self.exit;
                self.real.add_edge_unique(n, exit);
                vec![(n, true)]
            }
            StmtKind::Break => {
                let n = self.add_node(Some(s.id));
                self.connect(&frontier, n);
                loops
                    .last_mut()
                    .expect("break outside loop rejected by sema")
                    .breaks
                    .push((n, false));
                vec![(n, true)]
            }
            StmtKind::Continue => {
                let n = self.add_node(Some(s.id));
                self.connect(&frontier, n);
                let head = loops
                    .last()
                    .expect("continue outside loop rejected by sema")
                    .head;
                self.real.add_edge_unique(n, head);
                vec![(n, true)]
            }
        }
    }
}

/// Builds the statement-level CFG of `f`.
pub fn build_stmt_cfg(f: &Function) -> StmtCfg {
    let mut b = Builder {
        real: DiGraph::new(),
        augmented: Vec::new(),
        node_stmt: Vec::new(),
        stmt_node: HashMap::new(),
        exit: NodeId(0), // placeholder, fixed below
    };
    let entry = b.add_node(None);
    let exit = b.add_node(None);
    b.exit = exit;
    let mut loops = Vec::new();
    let out = b.build_block(&f.body, vec![(entry, false)], &mut loops);
    b.connect(&out, exit);
    // Ball–Horwitz: entry has an augmented edge to exit so top-level
    // statements become control-dependent on entry.
    b.augmented.push((entry, exit));
    StmtCfg {
        real: b.real,
        augmented: b.augmented,
        entry,
        exit,
        node_stmt: b.node_stmt,
        stmt_node: b.stmt_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specslice_lang::frontend;

    fn cfg_of(src: &str, func: &str) -> (StmtCfg, specslice_lang::Program) {
        let p = frontend(src).unwrap();
        let f = p.function(func).unwrap().clone();
        (build_stmt_cfg(&f), p)
    }

    #[test]
    fn straight_line() {
        let (cfg, _) = cfg_of("int main() { int x; x = 1; x = 2; return x; }", "main");
        // nodes: entry, exit, x=1, x=2, return
        assert_eq!(cfg.real.node_count(), 5);
        // return has a real edge to exit and an augmented fall-through that
        // also targets exit (it is the last statement).
        let ret = *cfg.stmt_node.values().max().unwrap();
        assert!(cfg.real.has_edge(ret, cfg.exit));
    }

    #[test]
    fn early_return_is_pseudo_predicate() {
        let (cfg, p) = cfg_of(
            "int g; int main() { int m; m = 0; if (m == 0) { return 1; } g = 5; return g; }",
            "main",
        );
        // find the early return node: it must have a real edge to exit AND an
        // augmented edge to the g = 5 node.
        let mut ret_node = None;
        let mut g5_node = None;
        p.visit_all(|_, s| match &s.kind {
            StmtKind::Return {
                value: Some(specslice_lang::Expr::Int(1)),
            } => ret_node = Some(cfg.stmt_node[&s.id]),
            StmtKind::Assign { name, .. } if name == "g" => g5_node = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        let (ret, g5) = (ret_node.unwrap(), g5_node.unwrap());
        assert!(cfg.real.has_edge(ret, cfg.exit));
        assert!(cfg.augmented.contains(&(ret, g5)));
        // In the augmented graph the return has two successors.
        let ag = cfg.augmented_graph();
        assert_eq!(ag.successors(ret).len(), 2);
    }

    #[test]
    fn while_loop_shape() {
        let (cfg, p) = cfg_of(
            "int main() { int i; i = 0; while (i < 3) { i = i + 1; } return i; }",
            "main",
        );
        let mut head = None;
        let mut body = None;
        p.visit_all(|_, s| match &s.kind {
            StmtKind::While { .. } => head = Some(cfg.stmt_node[&s.id]),
            StmtKind::Assign { name, value, .. }
                if name == "i" && !matches!(value, specslice_lang::Expr::Int(_)) =>
            {
                body = Some(cfg.stmt_node[&s.id])
            }
            _ => {}
        });
        let (head, body) = (head.unwrap(), body.unwrap());
        assert!(cfg.real.has_edge(head, body));
        assert!(cfg.real.has_edge(body, head)); // back edge
    }

    #[test]
    fn break_and_continue_edges() {
        let (cfg, p) = cfg_of(
            r#"int main() {
                int i;
                i = 0;
                while (1) {
                    i = i + 1;
                    if (i > 3) { break; }
                    if (i == 2) { continue; }
                    i = i + 10;
                }
                return i;
            }"#,
            "main",
        );
        let mut head = None;
        let mut brk = None;
        let mut cont = None;
        let mut ret = None;
        p.visit_all(|_, s| match &s.kind {
            StmtKind::While { .. } => head = Some(cfg.stmt_node[&s.id]),
            StmtKind::Break => brk = Some(cfg.stmt_node[&s.id]),
            StmtKind::Continue => cont = Some(cfg.stmt_node[&s.id]),
            StmtKind::Return { .. } => ret = Some(cfg.stmt_node[&s.id]),
            _ => {}
        });
        let (head, brk, cont, ret) = (head.unwrap(), brk.unwrap(), cont.unwrap(), ret.unwrap());
        // break: real edge to the statement after the loop (the return).
        assert!(cfg.real.has_edge(brk, ret));
        // continue: real edge back to the loop head.
        assert!(cfg.real.has_edge(cont, head));
        // both have augmented fall-through edges.
        assert!(cfg.augmented.iter().any(|&(f, _)| f == brk));
        assert!(cfg.augmented.iter().any(|&(f, _)| f == cont));
    }

    #[test]
    fn exit_call_jumps_to_exit() {
        let (cfg, p) = cfg_of(
            "int main() { int x; x = 1; exit(x); x = 2; return x; }",
            "main",
        );
        let mut exit_node = None;
        p.visit_all(|_, s| {
            if matches!(s.kind, StmtKind::Exit { .. }) {
                exit_node = Some(cfg.stmt_node[&s.id]);
            }
        });
        let e = exit_node.unwrap();
        assert!(cfg.real.has_edge(e, cfg.exit));
        assert!(cfg.augmented.iter().any(|&(f, _)| f == e));
    }

    #[test]
    fn plain_declarations_have_no_node() {
        let (cfg, p) = cfg_of("int main() { int x; x = 1; return x; }", "main");
        let mut decl_id = None;
        p.visit_all(|_, s| {
            if matches!(s.kind, StmtKind::Decl { init: None, .. }) {
                decl_id = Some(s.id);
            }
        });
        assert!(!cfg.stmt_node.contains_key(&decl_id.unwrap()));
    }

    #[test]
    fn entry_to_exit_augmented_edge_exists() {
        let (cfg, _) = cfg_of("int main() { return 0; }", "main");
        assert!(cfg.augmented.contains(&(cfg.entry, cfg.exit)));
    }
}
