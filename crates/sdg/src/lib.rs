//! System dependence graphs for MiniC (the paper's CodeSurfer substitute).
//!
//! This crate builds the Horwitz–Reps–Binkley *system dependence graph*
//! (SDG) the specialization-slicing algorithm consumes, entirely from
//! scratch:
//!
//! * [`mod@cfg`] — statement-level control-flow graphs with Ball–Horwitz
//!   augmented edges for `return`/`break`/`continue`/`exit`;
//! * [`modref`] — interprocedural `MayMod` / `MustMod` / upward-exposed-ref
//!   analysis that decides which globals get formal-in/formal-out vertices;
//! * [`model`] — SDG vertices (entry, statements, predicates, jumps, calls,
//!   actual-in/out, formal-in/out) and the five HRB edge kinds plus summary
//!   edges;
//! * [`build`] — the SDG builder: vertex creation, postdominator-based
//!   control dependence, reaching-definitions flow dependence, call /
//!   parameter-in / parameter-out edges, §6.1 library-call closure edges;
//! * [`summary`] — RHSR-style summary-edge computation;
//! * [`mod@slice`] — context-sensitive two-phase closure slicing (backward and
//!   forward) plus a context-insensitive Weiser-style executable slicer;
//! * [`binkley`] — Binkley's monovariant executable slicing baseline (§5).
//!
//! # Example
//!
//! ```
//! let program = specslice_lang::frontend(
//!     "int g; void p(int a) { g = a; } int main() { p(2); printf(\"%d\", g); return 0; }",
//! )?;
//! let sdg = specslice_sdg::build::build_sdg(&program)?;
//! let printf_actuals = sdg.printf_actual_in_vertices();
//! let slice = specslice_sdg::slice::backward_closure_slice(&sdg, &printf_actuals);
//! assert!(!slice.is_empty());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod binkley;
pub mod build;
pub mod cfg;
pub mod model;
pub mod modref;
pub mod patch;
pub mod slice;
pub mod summary;

pub use model::{
    CallSite, CallSiteId, CalleeKind, EdgeKind, InSlot, LibFn, OutSlot, Proc, ProcId, Sdg, Vertex,
    VertexId, VertexKind,
};
pub use modref::ModRefInfo;
pub use patch::{patch_sdg, SdgPatch};

use std::fmt;

/// Errors raised while building dependence graphs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SdgError {
    /// The program has no `main` procedure.
    NoMain,
    /// The program still contains an indirect call; the §6.2 lowering
    /// (`specslice::indirect`) must run before SDG construction.
    IndirectCall {
        /// Description naming the offending function/pointer.
        message: String,
    },
    /// The program was not normalized (statements lack ids).
    NotNormalized {
        /// Description naming the offending function.
        message: String,
    },
    /// Any other structural failure while building the SDG.
    Build {
        /// Human-readable description.
        message: String,
    },
}

impl SdgError {
    /// Creates a generic build error.
    pub fn new(message: impl Into<String>) -> Self {
        SdgError::Build {
            message: message.into(),
        }
    }

    /// The message without classification.
    pub fn message(&self) -> &str {
        match self {
            SdgError::NoMain => "program has no `main`",
            SdgError::IndirectCall { message }
            | SdgError::NotNormalized { message }
            | SdgError::Build { message } => message,
        }
    }
}

impl fmt::Display for SdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message())
    }
}

impl std::error::Error for SdgError {}
