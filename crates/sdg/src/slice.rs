//! Closure slicing: the context-sensitive two-phase HRB algorithm (backward
//! and forward) plus a context-insensitive Weiser-style executable slicer.
//!
//! These are the paper's §2.1.2 baseline ("closure slicing") and the §5
//! Weiser comparison point. The polyvariant algorithm lives in the
//! `specslice` crate; Binkley's monovariant algorithm in [`crate::binkley`].

use crate::model::*;
use std::collections::BTreeSet;

/// Edge kinds traversed in backward phase 1 (callers and same level; do not
/// descend through parameter-out edges).
fn backward_phase1(k: EdgeKind) -> bool {
    matches!(
        k,
        EdgeKind::Control
            | EdgeKind::Flow
            | EdgeKind::Call
            | EdgeKind::ParamIn
            | EdgeKind::Summary
            | EdgeKind::LibActual
    )
}

/// Edge kinds traversed in backward phase 2 (descend into callees; do not
/// re-ascend through call / parameter-in edges).
fn backward_phase2(k: EdgeKind) -> bool {
    matches!(
        k,
        EdgeKind::Control
            | EdgeKind::Flow
            | EdgeKind::ParamOut
            | EdgeKind::Summary
            | EdgeKind::LibActual
    )
}

fn reach_backward(
    sdg: &Sdg,
    seeds: impl IntoIterator<Item = VertexId>,
    allow: impl Fn(EdgeKind) -> bool,
) -> BTreeSet<VertexId> {
    let mut seen: BTreeSet<VertexId> = BTreeSet::new();
    let mut work: Vec<VertexId> = Vec::new();
    for s in seeds {
        if seen.insert(s) {
            work.push(s);
        }
    }
    while let Some(v) = work.pop() {
        for &(u, k) in sdg.predecessors(v) {
            if allow(k) && seen.insert(u) {
                work.push(u);
            }
        }
    }
    seen
}

fn reach_forward(
    sdg: &Sdg,
    seeds: impl IntoIterator<Item = VertexId>,
    allow: impl Fn(EdgeKind) -> bool,
) -> BTreeSet<VertexId> {
    let mut seen: BTreeSet<VertexId> = BTreeSet::new();
    let mut work: Vec<VertexId> = Vec::new();
    for s in seeds {
        if seen.insert(s) {
            work.push(s);
        }
    }
    while let Some(v) = work.pop() {
        for &(t, k) in sdg.successors(v) {
            if allow(k) && seen.insert(t) {
                work.push(t);
            }
        }
    }
    seen
}

/// Context-sensitive backward closure slice (Horwitz–Reps–Binkley, two
/// phases over summary-equipped SDGs).
pub fn backward_closure_slice(sdg: &Sdg, criterion: &[VertexId]) -> BTreeSet<VertexId> {
    let phase1 = reach_backward(sdg, criterion.iter().copied(), backward_phase1);
    let phase2 = reach_backward(sdg, phase1.iter().copied(), backward_phase2);
    phase2
}

/// Context-sensitive forward closure slice (dual phases).
pub fn forward_closure_slice(sdg: &Sdg, criterion: &[VertexId]) -> BTreeSet<VertexId> {
    // Phase 1: same level and up into callers (no descent through param-in).
    let phase1 = reach_forward(sdg, criterion.iter().copied(), |k| {
        matches!(
            k,
            EdgeKind::Control
                | EdgeKind::Flow
                | EdgeKind::ParamOut
                | EdgeKind::Summary
                | EdgeKind::LibActual
        )
    });
    // Phase 2: descend into callees (no re-ascent through param-out).
    reach_forward(sdg, phase1.iter().copied(), |k| {
        matches!(
            k,
            EdgeKind::Control
                | EdgeKind::Flow
                | EdgeKind::Call
                | EdgeKind::ParamIn
                | EdgeKind::Summary
                | EdgeKind::LibActual
        )
    })
}

/// Context-insensitive backward slice: transitive predecessors over every
/// edge kind (summary edges add nothing here).
pub fn context_insensitive_backward_slice(sdg: &Sdg, criterion: &[VertexId]) -> BTreeSet<VertexId> {
    reach_backward(sdg, criterion.iter().copied(), |k| k != EdgeKind::Summary)
}

/// A Weiser-style executable slice: context-insensitive, with atomic call
/// sites (a sliced call keeps *all* of its actual parameters) and unchanged
/// procedure signatures (all formal-ins of touched procedures are kept).
///
/// This reproduces the behavior the paper ascribes to Weiser's algorithm in
/// §5: executable, but context-insensitive and often much larger.
pub fn weiser_executable_slice(sdg: &Sdg, criterion: &[VertexId]) -> BTreeSet<VertexId> {
    let mut w: BTreeSet<VertexId> = criterion.iter().copied().collect();
    loop {
        w = reach_backward(sdg, w.iter().copied(), |k| k != EdgeKind::Summary);
        let mut additions: Vec<VertexId> = Vec::new();
        for site in &sdg.call_sites {
            if w.contains(&site.call_vertex) {
                for &a in &site.actual_ins {
                    if !w.contains(&a) {
                        additions.push(a);
                    }
                }
            }
        }
        for proc in &sdg.procs {
            let touched = proc.vertices.iter().any(|v| w.contains(v));
            if touched {
                for &fi in std::iter::once(&proc.entry).chain(&proc.formal_ins) {
                    if !w.contains(&fi) {
                        additions.push(fi);
                    }
                }
            }
        }
        if additions.is_empty() {
            return w;
        }
        w.extend(additions);
    }
}

/// Restricts a vertex set to one procedure.
pub fn restrict_to_proc(sdg: &Sdg, set: &BTreeSet<VertexId>, p: ProcId) -> BTreeSet<VertexId> {
    set.iter()
        .copied()
        .filter(|&v| sdg.vertex(v).proc == p)
        .collect()
}

/// Detects parameter mismatches in a vertex set: call sites where the
/// callee's formal-in is in the set but the matching actual-in is not
/// (the reason closure slices are not executable — §2.1.2).
pub fn parameter_mismatches(sdg: &Sdg, set: &BTreeSet<VertexId>) -> Vec<(CallSiteId, InSlot)> {
    let mut out = Vec::new();
    for site in &sdg.call_sites {
        let CalleeKind::User(callee) = site.callee else {
            continue;
        };
        if !set.contains(&site.call_vertex) {
            continue;
        }
        let callee_proc = sdg.proc(callee);
        for (&ai, &fi) in site.actual_ins.iter().zip(&callee_proc.formal_ins) {
            if set.contains(&fi) && !set.contains(&ai) {
                out.push((site.id, sdg.in_slot(fi).cloned().expect("formal-in slot")));
            }
            let _ = ai;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_sdg;
    use specslice_lang::frontend;

    const FIG1: &str = r#"
        int g1, g2, g3;
        void p(int a, int b) {
            g1 = a;
            g2 = b;
            g3 = g2;
        }
        int main() {
            g2 = 100;
            p(g2, 2);
            p(g2, 3);
            p(4, g1 + g2);
            printf("%d", g2);
        }
    "#;

    fn sdg_of(src: &str) -> Sdg {
        build_sdg(&frontend(src).unwrap()).unwrap()
    }

    /// The Fig. 3 closure slice: p's formal-in `a` is in the slice (because
    /// call site C2 needs it) but actual-ins at C1/C3 for `a` are not —
    /// the parameter-mismatch phenomenon of Ex. 2.3.
    #[test]
    fn fig1_closure_slice_matches_paper() {
        let sdg = sdg_of(FIG1);
        let criterion = sdg.printf_actual_in_vertices();
        let slice = backward_closure_slice(&sdg, &criterion);

        let p = sdg.proc_named("p").unwrap();
        // p1 (entry), p2 (a), p3 (b), p4 (g1=a), p5 (g2=b), p8 (fo g2),
        // p9 (fo g1) in slice; p6 (g3=g2), p7 (fo g3) not.
        let in_slice = |v: VertexId| slice.contains(&v);
        assert!(in_slice(p.entry));
        assert!(in_slice(p.formal_ins[0]), "formal-in a");
        assert!(in_slice(p.formal_ins[1]), "formal-in b");
        // formal-outs: find by slot
        let fo = |slot: &OutSlot| {
            p.formal_outs
                .iter()
                .copied()
                .find(|&v| sdg.out_slot(v) == Some(slot))
                .unwrap()
        };
        assert!(in_slice(fo(&OutSlot::Global("g1".into()))));
        assert!(in_slice(fo(&OutSlot::Global("g2".into()))));
        assert!(
            !in_slice(fo(&OutSlot::Global("g3".into()))),
            "g3 is irrelevant"
        );

        // g3 = g2 statement must be out.
        let stmts: Vec<VertexId> = p
            .vertices
            .iter()
            .copied()
            .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .collect();
        assert!(in_slice(stmts[0]), "g1 = a");
        assert!(in_slice(stmts[1]), "g2 = b");
        assert!(!in_slice(stmts[2]), "g3 = g2 must not be in the slice");

        // Parameter mismatches exist: a's actual-in missing at C1 and C3.
        let mismatches = parameter_mismatches(&sdg, &slice);
        assert_eq!(mismatches.len(), 2, "{mismatches:?}");
        assert!(mismatches.iter().all(|(_, s)| *s == InSlot::Param(0)));

        // g2 = 100 must NOT be in the context-sensitive slice (its value is
        // killed before reaching the criterion — see Fig. 1(a)/Fig. 3).
        let main = sdg.proc_named("main").unwrap();
        let main_stmts: Vec<VertexId> = main
            .vertices
            .iter()
            .copied()
            .filter(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .collect();
        assert_eq!(main_stmts.len(), 1, "only g2 = 100 is a plain statement");
        assert!(
            !in_slice(main_stmts[0]),
            "g2 = 100 wrongly included: context-sensitivity broken"
        );
    }

    #[test]
    fn weiser_slice_is_larger_and_mismatch_free() {
        let sdg = sdg_of(FIG1);
        let criterion = sdg.printf_actual_in_vertices();
        let closure = backward_closure_slice(&sdg, &criterion);
        let weiser = weiser_executable_slice(&sdg, &criterion);
        assert!(weiser.is_superset(&closure));
        assert!(parameter_mismatches(&sdg, &weiser).is_empty());
        // Weiser (context-insensitive) pulls g2 = 100 back in — Fig. 14(c).
        let main = sdg.proc_named("main").unwrap();
        let g2_100 = main
            .vertices
            .iter()
            .copied()
            .find(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .unwrap();
        assert!(weiser.contains(&g2_100));
    }

    #[test]
    fn forward_slice_of_assignment() {
        let sdg = sdg_of(
            r#"
            int g;
            void set(int a) { g = a; }
            int main() {
                int x;
                x = 1;
                set(x);
                printf("%d", g);
                return 0;
            }
            "#,
        );
        let main = sdg.proc_named("main").unwrap();
        let x1 = main
            .vertices
            .iter()
            .copied()
            .find(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .unwrap();
        let fwd = forward_closure_slice(&sdg, &[x1]);
        // x = 1 influences set's body and the printf argument.
        let set_proc = sdg.proc_named("set").unwrap();
        let g_assign = set_proc
            .vertices
            .iter()
            .copied()
            .find(|&v| matches!(sdg.vertex(v).kind, VertexKind::Statement { .. }))
            .unwrap();
        assert!(fwd.contains(&g_assign));
        let printf_args = sdg.printf_actual_in_vertices();
        assert!(printf_args.iter().any(|a| fwd.contains(a)));
    }

    #[test]
    fn slice_is_deterministic_and_monotone() {
        let sdg = sdg_of(FIG1);
        let criterion = sdg.printf_actual_in_vertices();
        let s1 = backward_closure_slice(&sdg, &criterion);
        // Deterministic: same criterion, same slice.
        assert_eq!(s1, backward_closure_slice(&sdg, &criterion));
        // Re-slicing *from the slice set* may legitimately grow the set: the
        // phase-2 vertices become phase-1 seeds and ascend to mismatched
        // actual-ins — exactly the parameter-mismatch phenomenon of §1 that
        // motivates specialization slicing. It must never shrink.
        let seeds: Vec<VertexId> = s1.iter().copied().collect();
        let s2 = backward_closure_slice(&sdg, &seeds);
        assert!(s2.is_superset(&s1));
    }

    #[test]
    fn empty_criterion_empty_slice() {
        let sdg = sdg_of(FIG1);
        assert!(backward_closure_slice(&sdg, &[]).is_empty());
    }

    #[test]
    fn context_sensitivity_two_callers() {
        // Classic: add is called from two sites; slicing on one result must
        // not drag in the other caller's arguments.
        let sdg = sdg_of(
            r#"
            int add(int a, int b) { return a + b; }
            int main() {
                int x;
                int y;
                x = add(1, 2);
                y = add(3, 4);
                printf("%d", x);
                return 0;
            }
            "#,
        );
        let criterion = sdg.printf_actual_in_vertices();
        let slice = backward_closure_slice(&sdg, &criterion);
        // The actual-ins of the second call (3, 4) must not be in the slice.
        let second_call = &sdg
            .call_sites
            .iter()
            .filter(|c| matches!(c.callee, CalleeKind::User(_)))
            .nth(1)
            .unwrap();
        for &a in &second_call.actual_ins {
            assert!(
                !slice.contains(&a),
                "context-insensitive leak: {}",
                sdg.label(a)
            );
        }
        // But the first call's actual-ins are.
        let first_call = &sdg
            .call_sites
            .iter()
            .find(|c| matches!(c.callee, CalleeKind::User(_)))
            .unwrap();
        for &a in &first_call.actual_ins {
            assert!(slice.contains(&a));
        }
    }
}
