//! Incremental SDG reconstruction across program edits.
//!
//! Rebuilding a system dependence graph from scratch repeats three costly
//! analyses — postdominator-based control dependence, reaching-definitions
//! flow dependence, and the RHSR summary-edge fixpoint — for every
//! procedure, even though a typical edit touches one. [`patch_sdg`] rebuilds
//! only what an edit can actually change:
//!
//! 1. the **vertex skeleton** is always rebuilt (statement and vertex ids
//!    are dense program-wide, so they must match a fresh build exactly);
//!    this is a cheap syntax walk;
//! 2. **control/flow/§6.1 dependence** is recomputed only for *dirty*
//!    procedures — those the edit touched, plus any procedure whose own or
//!    whose direct callee's mod/ref summary changed (callee summaries
//!    decide actual-out kill behavior and formal-in/out layouts); everything
//!    else is copied from the old SDG by ordinal correspondence;
//! 3. **summary edges** are re-derived only for procedures whose transitive
//!    callees changed (plus their direct callees, whose path facts feed the
//!    re-derivation); unchanged call sites keep their copied edges.
//!
//! The result is bit-for-bit the same graph `build_sdg` would produce on the
//! edited program — the incremental path changes *cost*, never output —
//! which the `incremental_reslicing` integration tests check end-to-end.

use crate::build::{self, CopyMode, ReusePlan};
use crate::model::{CallSiteId, ProcId, Sdg, VertexId};
use crate::SdgError;
use specslice_lang::ast::{Callee, Program, StmtKind};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The outcome of [`patch_sdg`]: the new SDG plus the correspondence between
/// old and new identifiers for everything that survived the edit.
#[derive(Debug)]
pub struct SdgPatch {
    /// The SDG of the edited program (identical to a fresh
    /// [`build::build_sdg`] on it).
    pub sdg: Sdg,
    /// Old vertex id → new vertex id, `None` for vertices of rebuilt
    /// procedures (their internal numbering has no stable correspondence).
    pub vertex_map: Vec<Option<VertexId>>,
    /// Old call-site id → new call-site id, `None` for sites of rebuilt
    /// procedures.
    pub call_site_map: Vec<Option<CallSiteId>>,
    /// Procedures whose dependence edges were recomputed from scratch.
    pub rebuilt: BTreeSet<String>,
    /// Procedures whose summary-edge facts were re-derived (a superset of
    /// `rebuilt`: transitive callers ride along, plus their direct callees).
    pub summary_seeds: BTreeSet<String>,
    /// Procedures whose dependence edges were copied instead of recomputed.
    pub reused_procs: usize,
    /// Rebuilt procedures whose *user-call structure* changed — new
    /// procedures, and procedures whose set of direct user callees differs
    /// from the old build. A statement edit that leaves call structure alone
    /// can only influence slices that mention the edited procedure itself;
    /// a structural change can additionally create or destroy call chains
    /// into anything it reaches, so invalidation must cast the wider net
    /// only for these.
    pub structure_changed: BTreeSet<String>,
}

impl SdgPatch {
    /// Maps an old vertex id through the patch.
    pub fn map_vertex(&self, v: VertexId) -> Option<VertexId> {
        self.vertex_map.get(v.index()).copied().flatten()
    }

    /// Maps an old call-site id through the patch.
    pub fn map_call_site(&self, c: CallSiteId) -> Option<CallSiteId> {
        self.call_site_map.get(c.index()).copied().flatten()
    }
}

/// Direct user-call edges of the program, by procedure name.
fn call_graph(program: &Program) -> BTreeMap<String, BTreeSet<String>> {
    let mut out: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &program.functions {
        out.entry(f.name.clone()).or_default();
    }
    program.visit_all(|caller, s| {
        if let StmtKind::Call(c) = &s.kind {
            if let Callee::Named(callee) = &c.callee {
                out.entry(caller.to_string())
                    .or_default()
                    .insert(callee.clone());
            }
        }
    });
    out
}

/// Rebuilds the SDG for `new_program` reusing as much of `old` as the edit
/// allows. `touched` names the procedures the edit modified directly (added,
/// removed, replaced, or statement-edited); `full` forces a fresh rebuild of
/// every procedure (used when the edit changes the global-variable list,
/// which can shift every layout at once).
///
/// # Errors
///
/// Structural failures from SDG construction, or a stale reuse plan (the old
/// SDG does not correspond to the claimed pre-edit program). Callers should
/// treat any error as "fall back to [`build::build_sdg`]".
pub fn patch_sdg(
    old: &Sdg,
    new_program: &Program,
    touched: &BTreeSet<String>,
    full: bool,
) -> Result<SdgPatch, SdgError> {
    build::validate_program(new_program)?;
    let summaries = build::analyze_modref(new_program);

    // Dirty set: procedures whose vertex skeleton or intra-PDG dependence
    // may differ from the old build.
    let force_all = full || old.modref.is_empty();
    let mut rebuilt: BTreeSet<String> = BTreeSet::new();
    let calls = call_graph(new_program);
    for f in &new_program.functions {
        let changed = |name: &str| -> bool {
            match (summaries.get(name), old.modref.get(name)) {
                (Some(new_info), Some(old_info)) => new_info != old_info,
                _ => true, // added or removed procedure
            }
        };
        let dirty = force_all
            || touched.contains(&f.name)
            || !old.proc_by_name.contains_key(&f.name)
            || changed(&f.name)
            || calls
                .get(&f.name)
                .is_some_and(|cs| cs.iter().any(|q| changed(q)));
        if dirty {
            rebuilt.insert(f.name.clone());
        }
    }

    // Summary-dirty set S: rebuilt procedures and their transitive callers
    // (a callee's path facts flow upward into every caller's summary edges).
    let mut callers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (caller, callees) in &calls {
        for callee in callees {
            callers
                .entry(callee.as_str())
                .or_default()
                .insert(caller.as_str());
        }
    }
    let mut summary_dirty: BTreeSet<String> = rebuilt.clone();
    let mut work: Vec<String> = rebuilt.iter().cloned().collect();
    while let Some(name) = work.pop() {
        if let Some(cs) = callers.get(name.as_str()) {
            for &c in cs {
                if summary_dirty.insert(c.to_string()) {
                    work.push(c.to_string());
                }
            }
        }
    }
    // Seeds: S plus its direct callees — their (unchanged) path facts must be
    // re-derived so new and rebuilt call sites inside S regain summary edges.
    let mut summary_seeds = summary_dirty.clone();
    for name in &summary_dirty {
        if let Some(cs) = calls.get(name) {
            summary_seeds.extend(cs.iter().cloned());
        }
    }

    // Copy plan: everything not rebuilt keeps its intra-PDG edges; summary
    // edges ride along only where no transitive callee changed.
    let mut copy: HashMap<String, CopyMode> = HashMap::new();
    for f in &new_program.functions {
        if rebuilt.contains(&f.name) {
            continue;
        }
        let Some(&old_pid) = old.proc_by_name.get(&f.name) else {
            return Err(SdgError::new(format!(
                "patch plan inconsistent: `{}` marked reusable but absent from the old SDG",
                f.name
            )));
        };
        copy.insert(
            f.name.clone(),
            CopyMode {
                old_pid,
                with_summary: !summary_dirty.contains(&f.name),
            },
        );
    }

    let plan = ReusePlan {
        old,
        copy,
        summary_seeds: summary_seeds.clone(),
    };
    let reused_procs = plan.copy.len();
    let sdg = build::build_sdg_reusing(new_program, summaries, &plan)?;

    // Identifier correspondence for everything that was not rebuilt. The
    // builder already verified per-procedure vertex-count equality.
    let mut vertex_map: Vec<Option<VertexId>> = vec![None; old.vertex_count()];
    let mut call_site_map: Vec<Option<CallSiteId>> = vec![None; old.call_sites.len()];
    for (name, &new_pid) in &sdg.proc_by_name {
        if rebuilt.contains(name) {
            continue;
        }
        let old_pid = old.proc_by_name[name];
        for (&ov, &nv) in old
            .proc(old_pid)
            .vertices
            .iter()
            .zip(&sdg.proc(new_pid).vertices)
        {
            vertex_map[ov.index()] = Some(nv);
        }
        let old_sites = sites_of(old, old_pid);
        let new_sites = sites_of(&sdg, new_pid);
        if old_sites.len() != new_sites.len() {
            return Err(SdgError::new(format!(
                "patch plan stale: `{name}` has {} call sites, previously {}",
                new_sites.len(),
                old_sites.len()
            )));
        }
        for (oc, nc) in old_sites.into_iter().zip(new_sites) {
            call_site_map[oc.index()] = Some(nc);
        }
    }

    // Call-structure changes among the rebuilt procedures: new procedures,
    // or a different multiset of direct user callees than the old build.
    let mut structure_changed = BTreeSet::new();
    for name in &rebuilt {
        let Some(&new_pid) = sdg.proc_by_name.get(name) else {
            continue;
        };
        let changed = match old.proc_by_name.get(name) {
            None => true,
            Some(&old_pid) => user_callee_names(old, old_pid) != user_callee_names(&sdg, new_pid),
        };
        if changed {
            structure_changed.insert(name.clone());
        }
    }

    Ok(SdgPatch {
        sdg,
        vertex_map,
        call_site_map,
        rebuilt,
        summary_seeds,
        reused_procs,
        structure_changed,
    })
}

/// Sorted multiset of the user procedures `pid` calls directly.
fn user_callee_names(sdg: &Sdg, pid: ProcId) -> Vec<String> {
    let mut out: Vec<String> = sdg
        .call_sites
        .iter()
        .filter(|c| c.caller == pid)
        .filter_map(|c| match c.callee {
            crate::model::CalleeKind::User(q) => Some(sdg.proc(q).name.clone()),
            crate::model::CalleeKind::Library(_) => None,
        })
        .collect();
    out.sort_unstable();
    out
}

/// Call sites whose caller is `pid`, in id (creation) order.
fn sites_of(sdg: &Sdg, pid: ProcId) -> Vec<CallSiteId> {
    sdg.call_sites
        .iter()
        .filter(|c| c.caller == pid)
        .map(|c| c.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_sdg;
    use crate::model::EdgeKind;
    use specslice_lang::delta::{ProgramDelta, ProgramEdit};
    use specslice_lang::frontend;

    const BASE: &str = r#"
        int g1, g2;
        void leaf(int a) { g1 = a; }
        void mid(int b) { leaf(b + 1); g2 = b; }
        int main() {
            g2 = 7;
            mid(g2);
            leaf(3);
            printf("%d", g1 + g2);
            return 0;
        }
    "#;

    /// Every edge of `sdg` as a sorted, comparable set.
    fn edge_set(sdg: &Sdg) -> BTreeSet<(VertexId, VertexId, EdgeKind)> {
        let mut out = BTreeSet::new();
        for v in sdg.vertex_ids() {
            for &(t, k) in sdg.successors(v) {
                out.insert((v, t, k));
            }
        }
        out
    }

    fn assert_same_graph(patched: &Sdg, fresh: &Sdg) {
        assert_eq!(patched.vertex_count(), fresh.vertex_count());
        assert_eq!(patched.call_sites.len(), fresh.call_sites.len());
        assert_eq!(edge_set(patched), edge_set(fresh), "edge sets differ");
        for (p, f) in patched.vertices.iter().zip(&fresh.vertices) {
            assert_eq!(p, f, "vertex tables diverge");
        }
        assert_eq!(patched.edge_counts, fresh.edge_counts);
    }

    #[test]
    fn leaf_edit_reuses_callers_and_matches_fresh_build() {
        let old_p = frontend(BASE).unwrap();
        let old = build_sdg(&old_p).unwrap();
        let delta = ProgramDelta::diff(
            &old_p,
            &frontend(&BASE.replace("g1 = a;", "g1 = a + a;")).unwrap(),
        );
        let new_p = delta.apply(&old_p).unwrap();
        let touched = delta.touched_functions(&old_p);
        let patch = patch_sdg(&old, &new_p, &touched, false).unwrap();
        let fresh = build_sdg(&new_p).unwrap();
        assert_same_graph(&patch.sdg, &fresh);
        // leaf changed; its summary changes nothing (same modref), so only
        // leaf rebuilds and mid/main are copied.
        assert!(patch.rebuilt.contains("leaf"));
        assert!(!patch.rebuilt.contains("main"));
        assert_eq!(patch.reused_procs, 2);
        // Unchanged procedures have full vertex correspondence.
        let main_old = old.proc_named("main").unwrap();
        for &v in &main_old.vertices {
            assert!(patch.map_vertex(v).is_some());
        }
        // Rebuilt procedures do not.
        let leaf_old = old.proc_named("leaf").unwrap();
        assert!(patch.map_vertex(leaf_old.vertices[1]).is_none());
    }

    #[test]
    fn modref_change_propagates_to_direct_callers() {
        let old_p = frontend(BASE).unwrap();
        let old = build_sdg(&old_p).unwrap();
        // leaf now also writes g2: MayMod(leaf) changes, so mid and main
        // (both call leaf) must be rebuilt; nothing else is left, but the
        // patched graph still matches a fresh build bit for bit.
        let delta = ProgramDelta::diff(
            &old_p,
            &frontend(&BASE.replace("g1 = a;", "g1 = a; g2 = a;")).unwrap(),
        );
        let new_p = delta.apply(&old_p).unwrap();
        let patch = patch_sdg(&old, &new_p, &delta.touched_functions(&old_p), false).unwrap();
        let fresh = build_sdg(&new_p).unwrap();
        assert_same_graph(&patch.sdg, &fresh);
        assert!(patch.rebuilt.contains("mid"));
        assert!(patch.rebuilt.contains("main"));
    }

    #[test]
    fn main_edit_keeps_callee_edges() {
        let old_p = frontend(BASE).unwrap();
        let old = build_sdg(&old_p).unwrap();
        let id = old_p.function("main").unwrap().body.stmts[0].id;
        let delta = ProgramDelta::single(ProgramEdit::ReplaceStmt {
            id,
            stmt: specslice_lang::Stmt::new(
                0,
                StmtKind::Assign {
                    name: "g2".into(),
                    value: specslice_lang::Expr::Int(9),
                },
            ),
        });
        let new_p = delta.apply(&old_p).unwrap();
        let patch = patch_sdg(&old, &new_p, &delta.touched_functions(&old_p), false).unwrap();
        let fresh = build_sdg(&new_p).unwrap();
        assert_same_graph(&patch.sdg, &fresh);
        assert_eq!(patch.rebuilt, BTreeSet::from(["main".to_string()]));
        // main's summary dirtiness does not spread to its callees' copies…
        assert_eq!(patch.reused_procs, 2);
        // …but their path facts are re-seeded for main's rebuilt call sites.
        assert!(patch.summary_seeds.contains("leaf"));
        assert!(patch.summary_seeds.contains("mid"));
    }

    #[test]
    fn added_and_removed_procedures_force_their_neighborhood() {
        let old_p = frontend(BASE).unwrap();
        let old = build_sdg(&old_p).unwrap();
        let new_p = frontend(&BASE.replace(
            "int main() {",
            "void extra(int z) { g1 = z; }\nint main() {\nextra(1);",
        ))
        .unwrap();
        let delta = ProgramDelta::diff(&old_p, &new_p);
        let new_p = delta.apply(&old_p).unwrap();
        let patch = patch_sdg(&old, &new_p, &delta.touched_functions(&old_p), false).unwrap();
        assert_same_graph(&patch.sdg, &build_sdg(&new_p).unwrap());
        assert!(patch.rebuilt.contains("extra"));
        assert!(patch.rebuilt.contains("main"));
    }

    #[test]
    fn full_rebuild_still_matches_fresh_build() {
        let old_p = frontend(BASE).unwrap();
        let old = build_sdg(&old_p).unwrap();
        let delta = ProgramDelta::single(ProgramEdit::AddGlobal("g3".into()));
        let new_p = delta.apply(&old_p).unwrap();
        let patch = patch_sdg(&old, &new_p, &delta.touched_functions(&old_p), true).unwrap();
        assert_same_graph(&patch.sdg, &build_sdg(&new_p).unwrap());
        assert_eq!(patch.reused_procs, 0);
        assert!(patch.vertex_map.iter().all(Option::is_none));
    }

    #[test]
    fn recursion_web_patches_consistently() {
        let src = r#"
            int g;
            void a(int k) { if (k > 0) { b(k - 1); } }
            void b(int k) { g = k; if (k > 0) { a(k - 1); } }
            int main() { a(4); printf("%d", g); return 0; }
        "#;
        let old_p = frontend(src).unwrap();
        let old = build_sdg(&old_p).unwrap();
        let delta = ProgramDelta::diff(
            &old_p,
            &frontend(&src.replace("g = k;", "g = k + 1;")).unwrap(),
        );
        let new_p = delta.apply(&old_p).unwrap();
        let patch = patch_sdg(&old, &new_p, &delta.touched_functions(&old_p), false).unwrap();
        assert_same_graph(&patch.sdg, &build_sdg(&new_p).unwrap());
    }
}
