//! Links per-function code into one segment.
//!
//! The encoder produces [`crate::encoder::FuncCode`] units whose jump
//! targets index their own code. Linking concatenates them in function
//! order (procedure index = function index, which is also what makes
//! function-pointer values agree with the interpreter) and rebases every
//! jump target by the function's entry offset. Call sites need no fixup —
//! they address the procedure *table*, not the code segment.

use crate::encoder::FuncCode;
use crate::isa::{Op, Proc};

/// Concatenates function code into `(code, lines, procs)`.
pub(crate) fn link(funcs: Vec<FuncCode>) -> (Vec<Op>, Vec<u32>, Vec<Proc>) {
    let total = funcs.iter().map(|f| f.code.len()).sum();
    let mut code: Vec<Op> = Vec::with_capacity(total);
    let mut lines: Vec<u32> = Vec::with_capacity(total);
    let mut procs = Vec::with_capacity(funcs.len());
    for f in funcs {
        let entry = code.len() as u32;
        code.extend(f.code.into_iter().map(|op| match op {
            Op::Jump(t) => Op::Jump(t + entry),
            Op::JumpIfZero(t) => Op::JumpIfZero(t + entry),
            Op::JumpIfNonZero(t) => Op::JumpIfNonZero(t + entry),
            other => other,
        }));
        lines.extend(f.lines);
        procs.push(Proc {
            name: f.name,
            entry,
            n_params: f.n_params,
            n_locals: f.n_locals,
        });
    }
    (code, lines, procs)
}
