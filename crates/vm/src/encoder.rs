//! AST → bytecode compiler.
//!
//! One [`Encoder`] compiles a whole program: the constant pool and the
//! call/scanf site tables are shared across functions, while code is
//! produced per function ([`FuncCode`]) with *function-local* jump targets
//! that [`crate::linker::link`] later rebases into one code segment.
//!
//! ## Slot resolution
//!
//! The checker guarantees flat function scope and no shadowing of globals,
//! so names resolve statically: a name is a global slot iff it is a program
//! global, otherwise it is a frame-local slot allocated on first mention
//! (parameters first — by-reference copy-back reads parameter slots at
//! return — then locals in first-occurrence order). Locals are
//! zero-initialized at frame entry, which reproduces the interpreter's
//! uninitialized-reads-0 rule; a *bare* declaration still compiles to a
//! store of 0 (without a fuel tick) because the interpreter re-zeroes the
//! variable each time the declaration executes, observable in loops.
//!
//! ## Tick placement
//!
//! [`Op::Step`] is emitted exactly where the tree-walker ticks: once before
//! every statement except bare declarations, plus once per `while`
//! condition evaluation (including the final, failing one). Step counts are
//! therefore identical across backends by construction.
//!
//! ## Divergence on unchecked ASTs
//!
//! On programs that *violate* the checker's guarantees the compiler front-
//! loads failures the interpreter only hits dynamically: an unknown callee
//! or a call-in-expression is a compile-time `Internal` error here even if
//! the offending statement is dynamically dead, and a local shadowing a
//! global resolves to the local slot for the whole function body. Programs
//! accepted by `specslice_lang::frontend` (and everything
//! `specialize_program` regenerates) cannot exhibit either.

use crate::isa::{CallSite, Op, ScanfSite, Slot};
use specslice_interp::ExecError;
use specslice_lang::ast::{
    BinOp, Callee, Expr, Function, ParamMode, Program, Stmt, StmtKind, UnOp,
};
use specslice_lang::Block;
use std::collections::HashMap;

/// A compiled function, pre-link: jump targets index this function's own
/// `code`.
pub(crate) struct FuncCode {
    pub(crate) name: String,
    pub(crate) code: Vec<Op>,
    pub(crate) lines: Vec<u32>,
    pub(crate) n_params: u32,
    pub(crate) n_locals: u32,
}

/// Program-wide compilation output.
pub(crate) struct Compiled {
    pub(crate) funcs: Vec<FuncCode>,
    pub(crate) pool: Vec<i64>,
    pub(crate) call_sites: Vec<CallSite>,
    pub(crate) scanf_sites: Vec<ScanfSite>,
    pub(crate) n_globals: u32,
    pub(crate) main: u32,
}

struct Loop {
    /// Function-local pc of the loop head (the per-iteration `Step`).
    head: u32,
    /// Indices of `Jump` placeholders to patch to the loop exit.
    breaks: Vec<usize>,
}

pub(crate) struct Encoder<'p> {
    program: &'p Program,
    fn_index: HashMap<&'p str, u32>,
    globals: HashMap<&'p str, u32>,
    pool: Vec<i64>,
    pool_index: HashMap<i64, u32>,
    call_sites: Vec<CallSite>,
    scanf_sites: Vec<ScanfSite>,
    // Per-function state, reset by `compile_fn`.
    code: Vec<Op>,
    lines: Vec<u32>,
    locals: HashMap<String, u32>,
    loops: Vec<Loop>,
}

fn internal(msg: impl Into<String>) -> ExecError {
    ExecError::Internal(msg.into())
}

impl<'p> Encoder<'p> {
    pub(crate) fn compile(program: &'p Program) -> Result<Compiled, ExecError> {
        let main = program
            .functions
            .iter()
            .position(|f| f.name == "main")
            .ok_or_else(|| internal("no main"))? as u32;
        let mut enc = Encoder {
            program,
            fn_index: program
                .functions
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.as_str(), i as u32))
                .collect(),
            globals: program
                .globals
                .iter()
                .enumerate()
                .map(|(i, g)| (g.as_str(), i as u32))
                .collect(),
            pool: Vec::new(),
            pool_index: HashMap::new(),
            call_sites: Vec::new(),
            scanf_sites: Vec::new(),
            code: Vec::new(),
            lines: Vec::new(),
            locals: HashMap::new(),
            loops: Vec::new(),
        };
        let funcs = program
            .functions
            .iter()
            .map(|f| enc.compile_fn(f))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Compiled {
            funcs,
            pool: enc.pool,
            call_sites: enc.call_sites,
            scanf_sites: enc.scanf_sites,
            n_globals: program.globals.len() as u32,
            main,
        })
    }

    fn compile_fn(&mut self, func: &'p Function) -> Result<FuncCode, ExecError> {
        self.code.clear();
        self.lines.clear();
        self.locals.clear();
        self.loops.clear();
        for p in &func.params {
            let slot = self.locals.len() as u32;
            self.locals.insert(p.name.clone(), slot);
        }
        let n_params = func.params.len() as u32;
        self.block(&func.body)?;
        // Implicit `return;` at the end of the body (fall-through).
        self.emit(Op::Ret, func.line);
        Ok(FuncCode {
            name: func.name.clone(),
            code: std::mem::take(&mut self.code),
            lines: std::mem::take(&mut self.lines),
            n_params,
            n_locals: self.locals.len() as u32,
        })
    }

    fn emit(&mut self, op: Op, line: u32) -> usize {
        self.code.push(op);
        self.lines.push(line);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfZero(t) | Op::JumpIfNonZero(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn konst(&mut self, v: i64) -> u32 {
        if let Some(&i) = self.pool_index.get(&v) {
            return i;
        }
        let i = self.pool.len() as u32;
        self.pool.push(v);
        self.pool_index.insert(v, i);
        i
    }

    /// Resolves a name to its slot: global iff a program global (no
    /// shadowing), otherwise a frame local allocated on first mention.
    fn slot(&mut self, name: &str) -> Slot {
        if let Some(&s) = self.locals.get(name) {
            return Slot::Local(s);
        }
        if let Some(&g) = self.globals.get(name) {
            return Slot::Global(g);
        }
        let s = self.locals.len() as u32;
        self.locals.insert(name.to_string(), s);
        Slot::Local(s)
    }

    fn push_slot(&mut self, slot: Slot, line: u32) {
        match slot {
            Slot::Local(n) => self.emit(Op::PushLocal(n), line),
            Slot::Global(n) => self.emit(Op::PushGlobal(n), line),
        };
    }

    fn store_slot(&mut self, slot: Slot, line: u32) {
        match slot {
            Slot::Local(n) => self.emit(Op::StoreLocal(n), line),
            Slot::Global(n) => self.emit(Op::StoreGlobal(n), line),
        };
    }

    fn block(&mut self, block: &'p Block) -> Result<(), ExecError> {
        for s in &block.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &'p Stmt) -> Result<(), ExecError> {
        let line = s.line;
        // The interpreter ticks every statement except bare declarations.
        if !matches!(s.kind, StmtKind::Decl { init: None, .. }) {
            self.emit(Op::Step, line);
        }
        match &s.kind {
            StmtKind::Decl { name, init, .. } => {
                match init {
                    Some(e) => self.expr(e, line)?,
                    None => {
                        // Re-zero on every execution (observable in loops).
                        let k = self.konst(0);
                        self.emit(Op::PushConst(k), line);
                    }
                }
                let slot = self.slot(name);
                self.store_slot(slot, line);
            }
            StmtKind::Assign { name, value } => {
                self.expr(value, line)?;
                let slot = self.slot(name);
                self.store_slot(slot, line);
            }
            StmtKind::Call(c) => match &c.callee {
                Callee::Named(n) => {
                    let fidx = *self
                        .fn_index
                        .get(n.as_str())
                        .ok_or_else(|| internal(format!("unknown fn {n}")))?;
                    let func = &self.program.functions[fidx as usize];
                    // The walker zips formals with actuals, so only
                    // min(params, args) actuals are evaluated (equal on
                    // checked programs).
                    let argc = func.params.len().min(c.args.len());
                    for a in &c.args[..argc] {
                        self.expr(a, line)?;
                    }
                    let backs = func
                        .params
                        .iter()
                        .zip(&c.args)
                        .map(|(p, a)| match (p.mode, a) {
                            (ParamMode::Ref, Expr::Var(v)) => Some(self.slot(v)),
                            _ => None,
                        })
                        .collect();
                    let assign_to = c.assign_to.as_deref().map(|t| self.slot(t));
                    let site = self.call_sites.len() as u32;
                    self.call_sites.push(CallSite {
                        proc: Some(fidx),
                        argc: argc as u32,
                        backs,
                        assign_to,
                    });
                    self.emit(Op::Call(site), line);
                }
                Callee::Indirect(ptr) => {
                    // Resolve (and bounds-check) the callee *before*
                    // evaluating arguments — walker ordering.
                    let slot = self.slot(ptr);
                    self.push_slot(slot, line);
                    self.emit(Op::ResolveFn, line);
                    for a in &c.args {
                        self.expr(a, line)?;
                    }
                    let assign_to = c.assign_to.as_deref().map(|t| self.slot(t));
                    let site = self.call_sites.len() as u32;
                    // Pointer-addressable functions take only by-value int
                    // parameters (checker guarantee): no copy-backs.
                    self.call_sites.push(CallSite {
                        proc: None,
                        argc: c.args.len() as u32,
                        backs: vec![None; c.args.len()],
                        assign_to,
                    });
                    self.emit(Op::CallIndirect(site), line);
                }
            },
            StmtKind::Printf { args, .. } => {
                for a in args {
                    self.expr(a, line)?;
                }
                self.emit(Op::Printf(args.len() as u32), line);
            }
            StmtKind::Scanf {
                targets, assign_to, ..
            } => {
                let targets = targets.iter().map(|t| self.slot(t)).collect();
                let assign_to = assign_to.as_deref().map(|t| self.slot(t));
                let site = self.scanf_sites.len() as u32;
                self.scanf_sites.push(ScanfSite { targets, assign_to });
                self.emit(Op::Scanf(site), line);
            }
            StmtKind::Exit { code } => {
                self.expr(code, line)?;
                self.emit(Op::Exit, line);
            }
            StmtKind::If {
                cond,
                then_block,
                else_block,
            } => {
                self.expr(cond, line)?;
                let jz = self.emit(Op::JumpIfZero(0), line);
                self.block(then_block)?;
                match else_block {
                    Some(eb) => {
                        let jend = self.emit(Op::Jump(0), line);
                        let here = self.here();
                        self.patch(jz, here);
                        self.block(eb)?;
                        let here = self.here();
                        self.patch(jend, here);
                    }
                    None => {
                        let here = self.here();
                        self.patch(jz, here);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                // Statement `Step` emitted above; the loop head adds one
                // `Step` per condition evaluation, failing one included.
                let head = self.here();
                self.emit(Op::Step, line);
                self.expr(cond, line)?;
                let jz = self.emit(Op::JumpIfZero(0), line);
                self.loops.push(Loop {
                    head,
                    breaks: Vec::new(),
                });
                self.block(body)?;
                self.emit(Op::Jump(head), line);
                let end = self.here();
                self.patch(jz, end);
                let finished = self.loops.pop().expect("loop stack");
                for b in finished.breaks {
                    self.patch(b, end);
                }
            }
            StmtKind::Return { value } => match value {
                Some(e) => {
                    self.expr(e, line)?;
                    self.emit(Op::RetVal, line);
                }
                None => {
                    self.emit(Op::Ret, line);
                }
            },
            StmtKind::Break => {
                let j = self.emit(Op::Jump(0), line);
                match self.loops.last_mut() {
                    Some(l) => l.breaks.push(j),
                    None => return Err(internal("break outside loop")),
                }
            }
            StmtKind::Continue => {
                let head = match self.loops.last() {
                    Some(l) => l.head,
                    None => return Err(internal("continue outside loop")),
                };
                self.emit(Op::Jump(head), line);
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &'p Expr, line: u32) -> Result<(), ExecError> {
        match e {
            Expr::Int(n) => {
                let k = self.konst(*n);
                self.emit(Op::PushConst(k), line);
            }
            Expr::Var(v) => {
                let slot = self.slot(v);
                self.push_slot(slot, line);
            }
            Expr::FuncRef(f) => {
                let fidx = *self
                    .fn_index
                    .get(f.as_str())
                    .ok_or_else(|| internal(format!("unknown fn {f}")))?;
                // A function-pointer value is the function's index + 1
                // (0 is the null pointer).
                let k = self.konst(i64::from(fidx) + 1);
                self.emit(Op::PushConst(k), line);
            }
            Expr::Unary(op, inner) => {
                self.expr(inner, line)?;
                self.emit(
                    match op {
                        UnOp::Neg => Op::Neg,
                        UnOp::Not => Op::Not,
                    },
                    line,
                );
            }
            Expr::Binary(BinOp::And, a, b) => {
                self.expr(a, line)?;
                let jz = self.emit(Op::JumpIfZero(0), line);
                self.expr(b, line)?;
                self.emit(Op::Bool, line);
                let jend = self.emit(Op::Jump(0), line);
                let here = self.here();
                self.patch(jz, here);
                let k = self.konst(0);
                self.emit(Op::PushConst(k), line);
                let here = self.here();
                self.patch(jend, here);
            }
            Expr::Binary(BinOp::Or, a, b) => {
                self.expr(a, line)?;
                let jnz = self.emit(Op::JumpIfNonZero(0), line);
                self.expr(b, line)?;
                self.emit(Op::Bool, line);
                let jend = self.emit(Op::Jump(0), line);
                let here = self.here();
                self.patch(jnz, here);
                let k = self.konst(1);
                self.emit(Op::PushConst(k), line);
                let here = self.here();
                self.patch(jend, here);
            }
            Expr::Binary(op, a, b) => {
                self.expr(a, line)?;
                self.expr(b, line)?;
                self.emit(
                    match op {
                        BinOp::Add => Op::Add,
                        BinOp::Sub => Op::Sub,
                        BinOp::Mul => Op::Mul,
                        BinOp::Div => Op::Div,
                        BinOp::Rem => Op::Rem,
                        BinOp::Lt => Op::Lt,
                        BinOp::Le => Op::Le,
                        BinOp::Gt => Op::Gt,
                        BinOp::Ge => Op::Ge,
                        BinOp::Eq => Op::Eq,
                        BinOp::Ne => Op::Ne,
                        BinOp::And | BinOp::Or => unreachable!("handled above"),
                    },
                    line,
                );
            }
            Expr::Call(_) => {
                return Err(internal("call in expression after normalization"));
            }
        }
        Ok(())
    }
}
