//! The bytecode instruction set.
//!
//! A compact stack ISA: every instruction is one [`Op`] with at most one
//! `u32` operand (8 bytes per instruction), indexing side tables on the
//! [`crate::Module`] — the constant pool, the procedure table, and the
//! per-site call/scanf descriptors. A `lines` table parallel to the code
//! segment maps each pc back to its source line, which is how runtime
//! errors (`DivisionByZero`, `BadFunctionPointer`) and `printf` output
//! sites report the same lines as the tree-walking interpreter.
//!
//! Design constraints, in order:
//!
//! 1. **Observational parity with `crates/interp`.** The interpreter ticks
//!    its fuel counter once per executed statement (bare declarations
//!    excepted, `while` loops once more per condition evaluation), so the
//!    ISA has an explicit [`Op::Step`] the encoder places exactly where the
//!    walker ticks. Getting step counts identical is what makes the
//!    specialized-vs-original step ratio in `BENCH_exec.json` a
//!    backend-independent measurement.
//! 2. **Static resolution.** MiniC's checker guarantees flat function
//!    scope, no shadowing, and declared-before-anything-else semantics, so
//!    every variable compiles to a fixed [`Slot`] and every direct call to
//!    a fixed procedure index — no name lookups at run time.
//! 3. **One-op library calls.** `printf`/`scanf` keep their statement
//!    shape ([`Op::Printf`], [`Op::Scanf`]) instead of lowering to loops,
//!    so the machine can mirror the interpreter's exhausted-input-reads-0
//!    and read-count semantics directly.

/// Where a variable lives: a frame-local slot or a program global.
///
/// Slot indices are assigned by the encoder: parameters first (slot `i` =
/// parameter `i`, which is what return-time by-reference copy-back relies
/// on), then declared locals in first-occurrence order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Slot {
    /// Index into the current frame's locals.
    Local(u32),
    /// Index into the program's globals.
    Global(u32),
}

/// A bytecode instruction.
///
/// Stack effects are noted as `before -> after` with the stack top on the
/// right.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Spend one unit of fuel (one interpreter statement tick).
    /// Fails with `OutOfFuel` when the budget is exhausted.
    Step,
    /// Push constant-pool entry `pool[n]`. ` -> v`
    PushConst(u32),
    /// Push frame local `n`. ` -> v`
    PushLocal(u32),
    /// Push global `n`. ` -> v`
    PushGlobal(u32),
    /// Pop into frame local `n`. `v -> `
    StoreLocal(u32),
    /// Pop into global `n`. `v -> `
    StoreGlobal(u32),
    /// Arithmetic negation (wrapping). `v -> -v`
    Neg,
    /// Logical not. `v -> (v == 0)`
    Not,
    /// Normalize to a truth value. `v -> (v != 0)`
    Bool,
    /// Wrapping add. `a b -> a + b`
    Add,
    /// Wrapping subtract. `a b -> a - b`
    Sub,
    /// Wrapping multiply. `a b -> a * b`
    Mul,
    /// Wrapping divide; `DivisionByZero` on zero divisor. `a b -> a / b`
    Div,
    /// Wrapping remainder; `DivisionByZero` on zero divisor. `a b -> a % b`
    Rem,
    /// Comparison. `a b -> (a < b)`
    Lt,
    /// Comparison. `a b -> (a <= b)`
    Le,
    /// Comparison. `a b -> (a > b)`
    Gt,
    /// Comparison. `a b -> (a >= b)`
    Ge,
    /// Comparison. `a b -> (a == b)`
    Eq,
    /// Comparison. `a b -> (a != b)`
    Ne,
    /// Unconditional jump to pc `n`.
    Jump(u32),
    /// Pop; jump to pc `n` if zero. `v -> `
    JumpIfZero(u32),
    /// Pop; jump to pc `n` if non-zero. `v -> `
    JumpIfNonZero(u32),
    /// Resolve a function-pointer value to a procedure index, *before* the
    /// call's arguments are evaluated (interpreter ordering);
    /// `BadFunctionPointer` if the value is not `index + 1` of a
    /// procedure. `v -> proc`
    ResolveFn,
    /// Direct call through `call_sites[n]` (which names the procedure).
    /// `a0 .. a(argc-1) -> ` (callee frame receives the arguments)
    Call(u32),
    /// Indirect call through `call_sites[n]`; the resolved procedure index
    /// sits below the arguments. `proc a0 .. a(argc-1) -> `
    CallIndirect(u32),
    /// Return without a value: run the site's by-reference copy-backs, pop
    /// the frame; the caller's `assign_to` target (if any) is left
    /// unchanged. Returning from `main` halts with exit code 0.
    Ret,
    /// Return the popped value: copy-backs, pop frame, store into the
    /// site's `assign_to` target if present. From `main`: halt with that
    /// exit code. `v -> `
    RetVal,
    /// Pop `n` arguments and append them, in evaluation order, to the
    /// output vector (output site = this instruction's line).
    /// `a0 .. a(n-1) -> `
    Printf(u32),
    /// Execute `scanf_sites[n]`: pop nothing, read inputs into the site's
    /// targets in order (exhausted input yields 0 and does not count as a
    /// read), then store the read count into `assign_to` if present.
    Scanf(u32),
    /// Pop the exit code and halt. `v -> `
    Exit,
}

/// Per-call-site static description: who is called, how results and
/// by-reference parameters flow back into the caller's slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Callee procedure index for direct calls; `None` for indirect sites
    /// (the resolved index is on the operand stack).
    pub proc: Option<u32>,
    /// Number of arguments on the stack at the call.
    pub argc: u32,
    /// Per-parameter by-reference copy-back target in the *caller*'s
    /// slots: `Some` exactly when the parameter is `int&` and the actual
    /// is a plain variable. (Indirect sites have none: pointer-addressable
    /// functions take only by-value `int` parameters.)
    pub backs: Vec<Option<Slot>>,
    /// Caller slot receiving the return value — written only when the
    /// callee executes `return e;`.
    pub assign_to: Option<Slot>,
}

/// Per-`scanf`-site static description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanfSite {
    /// Variables written by the read, in format order.
    pub targets: Vec<Slot>,
    /// Optional variable receiving the read count.
    pub assign_to: Option<Slot>,
}

/// A linked procedure: entry point and frame shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proc {
    /// Function name (diagnostics only).
    pub name: String,
    /// Absolute pc of the first instruction.
    pub entry: u32,
    /// Number of parameters (arguments land in locals `0..n_params`).
    pub n_params: u32,
    /// Total frame size, parameters included (zero-initialized on entry —
    /// which is also what makes uninitialized reads yield 0).
    pub n_locals: u32,
}
