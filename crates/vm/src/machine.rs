//! The fuel-bounded stack machine.
//!
//! One flat dispatch loop over the linked code segment. All run state is
//! four growable arrays — operand stack, locals stack, frame stack, global
//! store — so a run allocates O(depth + widest frame), not O(steps), and
//! the loop body never follows a pointer it didn't just push.
//!
//! Parity notes (the contract is: observably identical to the
//! tree-walking interpreter, enforced by `tests/vm_differential.rs`):
//!
//! * fuel is spent by explicit [`Op::Step`] instructions placed by the
//!   encoder, so `steps` counts interpreter statement ticks, not machine
//!   instructions — [`VmStats::instructions`] counts those separately;
//! * the recursion check fires when a call would push a frame beyond the
//!   budget (`main` is depth 0), *after* the arguments were evaluated —
//!   the interpreter's ordering;
//! * by-reference copy-backs run at return, reading the callee's parameter
//!   slots and writing the caller's slots *before* the return value lands
//!   in `assign_to` (a target can be both);
//! * `exit` halts the machine outright: the interpreter unwinds and runs
//!   copy-backs on the way out, but those writes are unobservable once
//!   execution stops, so the shortcut is behavior-preserving.

use crate::isa::{Op, Slot};
use crate::Module;
use specslice_interp::{ExecError, ExecOutcome};

/// Deterministic per-run machine counters (identical across hosts).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Bytecode instructions dispatched (≥ `steps`: expression and jump
    /// instructions don't consume fuel).
    pub instructions: u64,
    /// Deepest frame stack seen (`main` counts as 1).
    pub max_frames: u32,
}

struct Frame {
    ret_pc: u32,
    base: u32,
    /// Call-site index, or `u32::MAX` for the `main` frame.
    site: u32,
}

const MAIN_SITE: u32 = u32::MAX;

pub(crate) fn run(
    module: &Module,
    input: &[i64],
    fuel: u64,
    recursion_limit: u32,
    stats: &mut VmStats,
) -> Result<ExecOutcome, ExecError> {
    let code = &module.code;
    let main = &module.procs[module.main as usize];
    let mut stack: Vec<i64> = Vec::new();
    let mut locals: Vec<i64> = vec![0; main.n_locals as usize];
    let mut globals: Vec<i64> = vec![0; module.n_globals as usize];
    let mut frames: Vec<Frame> = vec![Frame {
        ret_pc: 0,
        base: 0,
        site: MAIN_SITE,
    }];
    let mut pc = main.entry as usize;
    let mut steps: u64 = 0;
    let mut output: Vec<i64> = Vec::new();
    let mut output_sites: Vec<u32> = Vec::new();
    let mut input_pos: usize = 0;
    stats.max_frames = 1;

    macro_rules! pop {
        () => {
            stack.pop().expect("operand stack underflow")
        };
    }
    macro_rules! binop {
        (|$a:ident, $b:ident| $body:expr) => {{
            let $b = pop!();
            let $a = pop!();
            stack.push($body);
            pc += 1;
        }};
    }
    macro_rules! write_slot {
        ($frame:expr, $slot:expr, $v:expr) => {
            match $slot {
                Slot::Local(n) => locals[$frame.base as usize + *n as usize] = $v,
                Slot::Global(n) => globals[*n as usize] = $v,
            }
        };
    }

    loop {
        stats.instructions += 1;
        match &code[pc] {
            Op::Step => {
                steps += 1;
                if steps > fuel {
                    return Err(ExecError::OutOfFuel { steps });
                }
                pc += 1;
            }
            Op::PushConst(k) => {
                stack.push(module.pool[*k as usize]);
                pc += 1;
            }
            Op::PushLocal(n) => {
                let frame = frames.last().expect("frame");
                stack.push(locals[frame.base as usize + *n as usize]);
                pc += 1;
            }
            Op::PushGlobal(n) => {
                stack.push(globals[*n as usize]);
                pc += 1;
            }
            Op::StoreLocal(n) => {
                let v = pop!();
                let frame = frames.last().expect("frame");
                locals[frame.base as usize + *n as usize] = v;
                pc += 1;
            }
            Op::StoreGlobal(n) => {
                globals[*n as usize] = pop!();
                pc += 1;
            }
            Op::Neg => {
                let v = pop!();
                stack.push(v.wrapping_neg());
                pc += 1;
            }
            Op::Not => {
                let v = pop!();
                stack.push(i64::from(v == 0));
                pc += 1;
            }
            Op::Bool => {
                let v = pop!();
                stack.push(i64::from(v != 0));
                pc += 1;
            }
            Op::Add => binop!(|a, b| a.wrapping_add(b)),
            Op::Sub => binop!(|a, b| a.wrapping_sub(b)),
            Op::Mul => binop!(|a, b| a.wrapping_mul(b)),
            Op::Div => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(ExecError::DivisionByZero {
                        line: module.lines[pc],
                    });
                }
                stack.push(a.wrapping_div(b));
                pc += 1;
            }
            Op::Rem => {
                let b = pop!();
                let a = pop!();
                if b == 0 {
                    return Err(ExecError::DivisionByZero {
                        line: module.lines[pc],
                    });
                }
                stack.push(a.wrapping_rem(b));
                pc += 1;
            }
            Op::Lt => binop!(|a, b| i64::from(a < b)),
            Op::Le => binop!(|a, b| i64::from(a <= b)),
            Op::Gt => binop!(|a, b| i64::from(a > b)),
            Op::Ge => binop!(|a, b| i64::from(a >= b)),
            Op::Eq => binop!(|a, b| i64::from(a == b)),
            Op::Ne => binop!(|a, b| i64::from(a != b)),
            Op::Jump(t) => pc = *t as usize,
            Op::JumpIfZero(t) => {
                let v = pop!();
                pc = if v == 0 { *t as usize } else { pc + 1 };
            }
            Op::JumpIfNonZero(t) => {
                let v = pop!();
                pc = if v != 0 { *t as usize } else { pc + 1 };
            }
            Op::ResolveFn => {
                let v = pop!();
                let idx = v - 1;
                if idx < 0 || idx as usize >= module.procs.len() {
                    return Err(ExecError::BadFunctionPointer {
                        line: module.lines[pc],
                    });
                }
                stack.push(idx);
                pc += 1;
            }
            Op::Call(site_idx) | Op::CallIndirect(site_idx) => {
                let site = &module.call_sites[*site_idx as usize];
                let indirect = matches!(code[pc], Op::CallIndirect(_));
                let proc_idx = match site.proc {
                    Some(p) => p as usize,
                    // Resolved index sits below the arguments.
                    None => stack[stack.len() - 1 - site.argc as usize] as usize,
                };
                let proc = &module.procs[proc_idx];
                // Depth check after argument evaluation (walker ordering):
                // the new frame's depth is frames.len(), main being 0.
                if frames.len() as u32 > recursion_limit {
                    return Err(ExecError::RecursionLimit);
                }
                let base = locals.len();
                locals.resize(base + proc.n_locals as usize, 0);
                let argbase = stack.len() - site.argc as usize;
                locals[base..base + site.argc as usize].copy_from_slice(&stack[argbase..]);
                stack.truncate(argbase);
                if indirect {
                    pop!(); // discard the resolved procedure index
                }
                frames.push(Frame {
                    ret_pc: pc as u32 + 1,
                    base: base as u32,
                    site: *site_idx,
                });
                stats.max_frames = stats.max_frames.max(frames.len() as u32);
                pc = proc.entry as usize;
            }
            Op::Ret | Op::RetVal => {
                let retval = match code[pc] {
                    Op::RetVal => Some(pop!()),
                    _ => None,
                };
                let frame = frames.pop().expect("frame");
                if frame.site == MAIN_SITE {
                    return Ok(ExecOutcome {
                        output,
                        output_sites,
                        exit_code: retval.unwrap_or(0),
                        steps,
                        inputs_consumed: input_pos,
                    });
                }
                let site = &module.call_sites[frame.site as usize];
                let caller = frames.last().expect("caller frame");
                // Copy-backs first, then the return value: a target can be
                // both, and the interpreter applies them in this order.
                for (i, back) in site.backs.iter().enumerate() {
                    if let Some(slot) = back {
                        let v = locals[frame.base as usize + i];
                        write_slot!(caller, slot, v);
                    }
                }
                locals.truncate(frame.base as usize);
                if let (Some(v), Some(slot)) = (retval, &site.assign_to) {
                    write_slot!(caller, slot, v);
                }
                pc = frame.ret_pc as usize;
            }
            Op::Printf(argc) => {
                let argbase = stack.len() - *argc as usize;
                let line = module.lines[pc];
                for &v in &stack[argbase..] {
                    output.push(v);
                    output_sites.push(line);
                }
                stack.truncate(argbase);
                pc += 1;
            }
            Op::Scanf(site_idx) => {
                let site = &module.scanf_sites[*site_idx as usize];
                let frame = frames.last().expect("frame");
                let mut read = 0i64;
                for t in &site.targets {
                    let v = if input_pos < input.len() {
                        input_pos += 1;
                        read += 1;
                        input[input_pos - 1]
                    } else {
                        0 // exhausted input reads 0 (and doesn't count)
                    };
                    write_slot!(frame, t, v);
                }
                if let Some(t) = &site.assign_to {
                    write_slot!(frame, t, read);
                }
                pc += 1;
            }
            Op::Exit => {
                let exit_code = pop!();
                return Ok(ExecOutcome {
                    output,
                    output_sites,
                    exit_code,
                    steps,
                    inputs_consumed: input_pos,
                });
            }
        }
    }
}
