//! Whole-program specialization quickstart: slice a corpus program once per
//! `printf` and merge every per-criterion result into ONE executable
//! program in which each procedure appears as exactly the set of variants
//! all criteria demand together — shared projections are deduplicated by
//! content interning and emitted once.
//!
//! Run with: `cargo run -p specslice --example specialize_program`

use specslice::{Criterion, Slicer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = specslice_corpus::by_name("wc").expect("corpus has wc");
    println!("=== original program ({}) ===\n{}", prog.name, prog.source);

    let slicer = Slicer::from_source(prog.source)?;
    // One criterion per printf call site: each demands its own projection
    // of the shared counting helpers.
    let criteria: Vec<Criterion> = slicer
        .sdg()
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect();
    println!("criteria: {} (one per printf)", criteria.len());

    let spec = slicer.specialize_program(&criteria)?;
    println!("\n=== merged specialized program ===\n{}", spec.source());

    println!("merged functions (variant -> demanded by criteria):");
    for f in &spec.functions {
        println!(
            "  {:<12} specializes {:<10} demanded by {:?}",
            f.name, f.origin, f.demanded_by
        );
    }
    println!(
        "variants: {} across criteria -> {} merged ({} deduped); driver main: {}",
        spec.total_criterion_variants,
        spec.merged_variant_count(),
        spec.reused_variants,
        spec.driver_main,
    );
    let st = slicer.store_stats();
    println!(
        "variant store: {} interned / {} intern calls ({} dedup hits), {} row bytes",
        st.interned, st.intern_calls, st.dedup_hits, st.row_bytes
    );

    // The merged program is executable end to end.
    let run = spec.run(prog.sample_input)?;
    println!("merged program ran: printed {:?}", run.output);
    Ok(())
}
