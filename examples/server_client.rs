//! Quickstart for the `specslice-server` daemon: open a session, slice,
//! edit, re-slice, read stats — then restart the server and show the warm
//! start answering the repeated query from the persisted memo.
//!
//! Two modes:
//!
//! * **no arguments** — everything in-process: the example starts a daemon
//!   on a unix socket in a temp directory, runs the cold phase, shuts the
//!   daemon down (which snapshots), starts a fresh daemon on the same
//!   snapshot directory, and runs the warm phase. This is the
//!   `cargo run --example server_client` path.
//! * **`--server BIN --unix SOCK --snapshot-dir DIR [--threads N]
//!   [--corpus]`** — the same scenario against an *external* daemon binary,
//!   spawning and respawning it; `--corpus` additionally cycles every
//!   corpus program through the cold → snapshot → warm loop. This is what
//!   CI's `server-smoke` job runs: the real binary, a real socket, and a
//!   real process restart.
//!
//! The example asserts the smoke-test acceptance criteria and exits
//! non-zero on failure: the warm session must report `memo_imported > 0`
//! and its first repeated query must be a memo hit (`memo_hits >= 1`),
//! with a byte-identical slice response.

use specslice_server::{serve, Bind, Client, Json, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

const PROGRAM: &str = r#"
    int total;
    int count;
    void add(int x) { total = total + x; count = count + 1; }
    int avg() { if (count == 0) { return 0; } return total / count; }
    int main() {
        int i;
        i = 0;
        total = 0;
        count = 0;
        while (i < 5) { add(i); i = i + 1; }
        printf("%d\n", avg());
        return 0;
    }
"#;

const EDITED_AVG: &str = "int avg() { if (count == 0) { return 0 - 1; } return total / count; }";

fn fail(msg: &str) -> ! {
    eprintln!("server_client: FAIL: {msg}");
    std::process::exit(1);
}

/// Response body with the echoed `id` normalized out — request-id counters
/// differ between connections, everything else must not.
fn strip_id(bytes: &[u8]) -> String {
    let v = Json::parse(std::str::from_utf8(bytes).unwrap()).unwrap();
    match v {
        Json::Object(mut m) => {
            m.remove("id");
            Json::Object(m).to_text()
        }
        other => other.to_text(),
    }
}

fn get_i64(v: &Json, path: &[&str]) -> i64 {
    let mut cur = v;
    for p in path {
        cur = cur
            .get(p)
            .unwrap_or_else(|| fail(&format!("response missing `{p}`: {}", v.to_text())));
    }
    cur.as_i64()
        .unwrap_or_else(|| fail(&format!("`{}` is not an integer", path.join("."))))
}

/// The cold phase: open, slice, edit, re-slice, stats. Returns the session
/// id after the edit and the raw bytes of the post-edit slice response.
fn cold_phase(client: &mut Client<impl Read + Write>, source: &str) -> (String, Vec<u8>) {
    let opened = client
        .request("open", [("source", Json::str(source))])
        .unwrap_or_else(|e| fail(&format!("open: {e}")));
    let session = opened
        .get("session")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    println!(
        "opened session {session}: {} vertices, warm={}",
        get_i64(&opened, &["vertices"]),
        opened.get("warm").and_then(Json::as_bool).unwrap()
    );

    let criterion = Json::obj([("kind", Json::str("printf_actuals"))]);
    let sliced = client
        .request(
            "slice",
            [
                ("session", Json::str(session.clone())),
                ("criterion", criterion.clone()),
            ],
        )
        .unwrap_or_else(|e| fail(&format!("slice: {e}")));
    let n_variants = sliced
        .get("slice")
        .and_then(|s| s.get("variants"))
        .and_then(Json::as_array)
        .map(|a| a.len())
        .unwrap_or_else(|| fail("slice response has no variants"));
    println!("cold slice: {n_variants} variants");

    // Edit: replace `avg` (the slice's callee), then re-slice. The edit
    // re-keys the session; keep using the id the server returns.
    let edited = client
        .request(
            "apply_edit",
            [
                ("session", Json::str(session.clone())),
                (
                    "edits",
                    Json::arr([Json::obj([
                        ("kind", Json::str("replace_function")),
                        ("source", Json::str(EDITED_AVG)),
                    ])]),
                ),
            ],
        )
        .unwrap_or_else(|e| fail(&format!("apply_edit: {e}")));
    let session = edited
        .get("session")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    println!(
        "edit applied: memo kept {} / dropped {}, session re-keyed to {session}",
        get_i64(&edited, &["report", "memo_kept"]),
        get_i64(&edited, &["report", "memo_dropped"]),
    );

    let resliced_bytes = client
        .request_bytes(
            "slice",
            [
                ("session", Json::str(session.clone())),
                ("criterion", criterion),
            ],
        )
        .unwrap_or_else(|e| fail(&format!("re-slice: {e}")));

    let stats = client
        .request("stats", [("session", Json::str(session.clone()))])
        .unwrap_or_else(|e| fail(&format!("stats: {e}")));
    println!(
        "cold stats: queries_run={}, memo_len={}, bytes={}",
        get_i64(&stats, &["session_stats", "queries_run"]),
        get_i64(&stats, &["session_stats", "memo_len"]),
        get_i64(&stats, &["session_stats", "bytes"]),
    );

    (session, resliced_bytes)
}

/// The warm phase: re-open the edited program after a server restart and
/// assert the memo came back from the snapshot.
fn warm_phase(client: &mut Client<impl Read + Write>, edited_source: &str, expected_bytes: &[u8]) {
    let opened = client
        .request("open", [("source", Json::str(edited_source))])
        .unwrap_or_else(|e| fail(&format!("warm open: {e}")));
    let session = opened
        .get("session")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    if opened.get("warm").and_then(Json::as_bool) != Some(true) {
        fail(&format!("expected a warm open, got {}", opened.to_text()));
    }
    let imported = get_i64(&opened, &["memo_imported"]);
    if imported < 1 {
        fail(&format!(
            "warm open imported {imported} memo entries, expected >= 1"
        ));
    }
    println!("warm open: imported {imported} memo entries from the snapshot");

    let warm_bytes = client
        .request_bytes(
            "slice",
            [
                ("session", Json::str(session.clone())),
                (
                    "criterion",
                    Json::obj([("kind", Json::str("printf_actuals"))]),
                ),
            ],
        )
        .unwrap_or_else(|e| fail(&format!("warm slice: {e}")));
    if strip_id(&warm_bytes) != strip_id(expected_bytes) {
        fail("warm slice response differs from the pre-restart response");
    }
    println!("warm slice is byte-identical to the pre-restart slice");

    let stats = client
        .request("stats", [("session", Json::str(session))])
        .unwrap_or_else(|e| fail(&format!("warm stats: {e}")));
    let memo_hits = get_i64(&stats, &["session_stats", "memo_hits"]);
    if memo_hits < 1 {
        fail(&format!(
            "first repeated query after restart ran the pipeline (memo_hits={memo_hits})"
        ));
    }
    println!("warm start verified: memo_hits={memo_hits} on the first repeated query");
}

/// Opens and slices every corpus program on the cold server, returning the
/// raw slice responses to hold the warm phase to.
fn corpus_cold(client: &mut Client<impl Read + Write>) -> Vec<(&'static str, Vec<u8>)> {
    specslice_corpus::programs()
        .iter()
        .map(|p| {
            let opened = client
                .request("open", [("source", Json::str(p.source))])
                .unwrap_or_else(|e| fail(&format!("open {}: {e}", p.name)));
            let session = opened
                .get("session")
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            let bytes = client
                .request_bytes(
                    "slice",
                    [
                        ("session", Json::str(session)),
                        (
                            "criterion",
                            Json::obj([("kind", Json::str("printf_actuals"))]),
                        ),
                    ],
                )
                .unwrap_or_else(|e| fail(&format!("slice {}: {e}", p.name)));
            println!(
                "corpus {}: opened ({} vertices), sliced",
                p.name,
                get_i64(&opened, &["vertices"])
            );
            (p.name, bytes)
        })
        .collect()
}

/// Re-opens every corpus program on the restarted server and asserts each
/// one warm-starts: memo imported, byte-identical slice, memo hit.
fn corpus_warm(client: &mut Client<impl Read + Write>, expected: &[(&'static str, Vec<u8>)]) {
    for (program, want) in specslice_corpus::programs().iter().zip(expected) {
        let opened = client
            .request("open", [("source", Json::str(program.source))])
            .unwrap_or_else(|e| fail(&format!("warm open {}: {e}", program.name)));
        let session = opened
            .get("session")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if opened.get("warm").and_then(Json::as_bool) != Some(true)
            || get_i64(&opened, &["memo_imported"]) < 1
        {
            fail(&format!(
                "corpus {} did not warm-start: {}",
                program.name,
                opened.to_text()
            ));
        }
        let got = client
            .request_bytes(
                "slice",
                [
                    ("session", Json::str(session.clone())),
                    (
                        "criterion",
                        Json::obj([("kind", Json::str("printf_actuals"))]),
                    ),
                ],
            )
            .unwrap_or_else(|e| fail(&format!("warm slice {}: {e}", program.name)));
        if strip_id(&got) != strip_id(&want.1) {
            fail(&format!("corpus {}: warm slice differs", program.name));
        }
        let stats = client
            .request("stats", [("session", Json::str(session))])
            .unwrap_or_else(|e| fail(&format!("warm stats {}: {e}", program.name)));
        let hits = get_i64(&stats, &["session_stats", "memo_hits"]);
        if hits < 1 {
            fail(&format!(
                "corpus {}: repeated query missed the memo after restart",
                program.name
            ));
        }
        println!(
            "corpus {}: warm start verified (memo_hits={hits})",
            program.name
        );
    }
}

/// The edited program's full source, as the warm phase must submit it. Any
/// formatting works — sessions are keyed by *normalized* source.
fn edited_source() -> String {
    PROGRAM.replace(
        "int avg() { if (count == 0) { return 0; } return total / count; }",
        EDITED_AVG,
    )
}

// ---------------------------------------------------------------- in-process

fn run_in_process() {
    let dir = std::env::temp_dir().join(format!("specslice-example-{}", std::process::id()));
    let snap = dir.join("snapshots");
    std::fs::create_dir_all(&snap).unwrap();
    let sock = dir.join("daemon.sock");

    println!("== cold server ==");
    let mut config = ServerConfig::new(Bind::Unix(sock.clone()));
    config.snapshot_dir = Some(snap.clone());
    let handle = serve(config.clone()).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let mut client = Client::connect_unix(&sock).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    let (_session, expected) = cold_phase(&mut client, PROGRAM);
    let edited = edited_source();
    client
        .request("shutdown", [])
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    handle.wait();

    println!("== restarted server ==");
    let handle = serve(config).unwrap_or_else(|e| fail(&format!("re-bind: {e}")));
    let mut client =
        Client::connect_unix(&sock).unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
    warm_phase(&mut client, &edited, &expected);
    client
        .request("shutdown", [])
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    handle.wait();

    let _ = std::fs::remove_dir_all(&dir);
    println!("OK");
}

// ------------------------------------------------------------ external mode

struct Daemon {
    child: Child,
}

impl Daemon {
    fn spawn(server_bin: &str, sock: &PathBuf, snap: &PathBuf, threads: Option<&str>) -> Daemon {
        let mut cmd = Command::new(server_bin);
        cmd.arg("--unix")
            .arg(sock)
            .arg("--snapshot-dir")
            .arg(snap)
            .stdout(Stdio::piped());
        if let Some(t) = threads {
            cmd.arg("--threads").arg(t);
        }
        let mut child = cmd
            .spawn()
            .unwrap_or_else(|e| fail(&format!("spawn {server_bin}: {e}")));
        // Wait for the readiness line.
        let stdout = child.stdout.take().unwrap();
        let mut lines = BufReader::new(stdout).lines();
        match lines.next() {
            Some(Ok(line)) if line.contains("listening on") => {}
            other => fail(&format!("daemon did not report readiness: {other:?}")),
        }
        // Keep draining stdout in the background so the daemon never blocks
        // on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child }
    }

    fn wait(mut self) {
        let status = self.child.wait().expect("daemon wait");
        if !status.success() {
            fail(&format!("daemon exited with {status}"));
        }
    }
}

fn run_external(
    server_bin: &str,
    sock: PathBuf,
    snap: PathBuf,
    threads: Option<String>,
    corpus: bool,
) {
    std::fs::create_dir_all(&snap).unwrap();

    println!("== cold server (external) ==");
    let daemon = Daemon::spawn(server_bin, &sock, &snap, threads.as_deref());
    let mut client = Client::connect_unix(&sock).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    let (_session, expected) = cold_phase(&mut client, PROGRAM);
    let corpus_expected = if corpus {
        corpus_cold(&mut client)
    } else {
        Vec::new()
    };
    let edited = edited_source();
    client
        .request("shutdown", [])
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    daemon.wait();

    println!("== restarted server (external) ==");
    let daemon = Daemon::spawn(server_bin, &sock, &snap, threads.as_deref());
    let mut client =
        Client::connect_unix(&sock).unwrap_or_else(|e| fail(&format!("reconnect: {e}")));
    warm_phase(&mut client, &edited, &expected);
    if corpus {
        corpus_warm(&mut client, &corpus_expected);
    }
    client
        .request("shutdown", [])
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    daemon.wait();
    println!("OK");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut server_bin = None;
    let mut sock = None;
    let mut snap = None;
    let mut threads = None;
    let mut corpus = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--server" => server_bin = Some(value("--server")),
            "--unix" => sock = Some(PathBuf::from(value("--unix"))),
            "--snapshot-dir" => snap = Some(PathBuf::from(value("--snapshot-dir"))),
            "--threads" => threads = Some(value("--threads")),
            "--corpus" => corpus = true,
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    match (server_bin, sock, snap) {
        (None, None, None) => run_in_process(),
        (Some(bin), Some(sock), Some(snap)) => run_external(&bin, sock, snap, threads, corpus),
        _ => fail("external mode needs --server, --unix, and --snapshot-dir together"),
    }
}
