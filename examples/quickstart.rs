//! Quickstart: specialize the paper's Fig. 1 program and print the result.
//!
//! Run with: `cargo run -p specslice --example quickstart`

use specslice::exec::{self, ExecRequest};
use specslice::{Criterion, Slicer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1(a): three calls to p, each needing different parameters.
    let source = specslice_corpus::examples::FIG1;
    println!("=== original program ===\n{source}");

    // One session runs frontend → SDG → PDS encoding and caches them.
    let slicer = Slicer::from_source(source)?;
    let criterion = Criterion::printf_actuals(slicer.sdg());
    let slice = slicer.slice(&criterion)?;

    println!("specialized procedures:");
    for v in &slice.variants() {
        println!(
            "  {:<8} ({} vertices, params kept: {:?})",
            v.name,
            v.vertices.len(),
            v.kept_params(slicer.sdg())
        );
    }

    // Regenerate executable source (the paper's Fig. 1(b)).
    let regen = slicer.regenerate(&slice)?;
    println!("\n=== specialization slice ===\n{}", regen.source);

    // Both programs print the same criterion value (backend selectable via
    // SPECSLICE_EXEC_BACKEND=interp|vm).
    let a = exec::run(&ExecRequest::new(slicer.program().expect("from source")))?;
    let b = exec::run(&ExecRequest::new(&regen.program))?;
    assert_eq!(a.output, b.output);
    println!("both print: {:?} — executable slice verified", a.output);
    Ok(())
}
