//! Feature removal (§7 / Alg. 2): delete the "product" feature from the
//! paper's Fig. 16 program while keeping the shared `add` helper alive.

use specslice::exec::{self, ExecRequest};
use specslice::{Criterion, Slicer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = specslice_corpus::examples::FIG16;
    println!("=== original (sum AND product) ===\n{source}");

    let slicer = Slicer::from_source(source)?;
    let sdg = slicer.sdg();

    // The feature = forward slice from `prod = 1` in main.
    let main = sdg.proc_named("main").expect("main");
    let prod_init = main
        .vertices
        .iter()
        .copied()
        .filter(|&v| {
            matches!(
                sdg.vertex(v).kind,
                specslice_sdg::VertexKind::Statement { .. }
            )
        })
        .nth(1)
        .expect("prod = 1");
    println!("removing forward slice of: {}", sdg.label(prod_init));

    let slice = slicer.remove_feature(&Criterion::vertex(prod_init))?;
    let regen = slicer.regenerate(&slice)?;
    println!("=== feature removed (sum only) ===\n{}", regen.source);

    // The sum still computes correctly.
    let program = slicer.program().expect("from source");
    let original = exec::run(&ExecRequest::new(program).with_fuel(ExecRequest::DEEP_FUEL))?;
    let reduced = exec::run(&ExecRequest::new(&regen.program).with_fuel(ExecRequest::DEEP_FUEL))?;
    assert_eq!(original.output[0], reduced.output[0], "sum preserved");
    println!(
        "sum preserved: {} (original also printed product {})",
        reduced.output[0], original.output[1]
    );
    Ok(())
}
