//! Feature removal (§7 / Alg. 2): delete the "product" feature from the
//! paper's Fig. 16 program while keeping the shared `add` helper alive.

use specslice::Criterion;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = specslice_corpus::examples::FIG16;
    println!("=== original (sum AND product) ===\n{source}");

    let program = specslice_lang::frontend(source)?;
    let sdg = specslice_sdg::build::build_sdg(&program)?;

    // The feature = forward slice from `prod = 1` in main.
    let main = sdg.proc_named("main").expect("main");
    let prod_init = main
        .vertices
        .iter()
        .copied()
        .filter(|&v| matches!(sdg.vertex(v).kind, specslice_sdg::VertexKind::Statement { .. }))
        .nth(1)
        .expect("prod = 1");
    println!("removing forward slice of: {}", sdg.label(prod_init));

    let slice = specslice::feature_removal::remove_feature(&sdg, &Criterion::vertex(prod_init))?;
    let regen = specslice::regen::regenerate(&sdg, &program, &slice)?;
    println!("=== feature removed (sum only) ===\n{}", regen.source);

    // The sum still computes correctly.
    let original = specslice_interp::run(&program, &[], 1_000_000)?;
    let reduced = specslice_interp::run(&regen.program, &[], 1_000_000)?;
    assert_eq!(original.output[0], reduced.output[0], "sum preserved");
    println!(
        "sum preserved: {} (original also printed product {})",
        reduced.output[0], original.output[1]
    );
    Ok(())
}
