//! Procedure pointers (§6.2): lower indirect calls into an explicit
//! dispatcher, then specialize — pointees get specialized variants while
//! the original (emptied) functions survive as the pointer-value space.

use specslice::exec::{self, ExecRequest};
use specslice::{indirect, Criterion, Slicer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = specslice_corpus::examples::FIG15;
    println!("=== original (indirect call x = p(1, 2)) ===\n{source}");

    let program = specslice_lang::frontend(source)?;
    let lowered = indirect::lower_indirect_calls(&program)?;
    println!(
        "=== after §6.2 lowering ===\n{}",
        specslice_lang::pretty(&lowered)
    );

    let slicer = Slicer::from_program(lowered)?;
    let slice = slicer.slice(&Criterion::printf_actuals(slicer.sdg()))?;
    let regen = slicer.regenerate(&slice)?;
    println!("=== specialization slice ===\n{}", regen.source);

    // Behavior is preserved for both pointer targets.
    let lowered = slicer.program().expect("from program");
    for input in [[1i64], [0i64]] {
        let a = exec::run(&ExecRequest::new(lowered).with_input(&input))?;
        let b = exec::run(&ExecRequest::new(&regen.program).with_input(&input))?;
        assert_eq!(a.output, b.output);
        println!("input {input:?} → {:?} (slice agrees)", a.output);
    }
    Ok(())
}
