//! Procedure pointers (§6.2): lower indirect calls into an explicit
//! dispatcher, then specialize — pointees get specialized variants while
//! the original (emptied) functions survive as the pointer-value space.

use specslice::{specialize, Criterion};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = specslice_corpus::examples::FIG15;
    println!("=== original (indirect call x = p(1, 2)) ===\n{source}");

    let program = specslice_lang::frontend(source)?;
    let lowered = specslice::indirect::lower_indirect_calls(&program)?;
    println!(
        "=== after §6.2 lowering ===\n{}",
        specslice_lang::pretty(&lowered)
    );

    let sdg = specslice_sdg::build::build_sdg(&lowered)?;
    let slice = specialize(&sdg, &Criterion::printf_actuals(&sdg))?;
    let regen = specslice::regen::regenerate(&sdg, &lowered, &slice)?;
    println!("=== specialization slice ===\n{}", regen.source);

    // Behavior is preserved for both pointer targets.
    for input in [[1i64], [0i64]] {
        let a = specslice_interp::run(&lowered, &input, 100_000)?;
        let b = specslice_interp::run(&regen.program, &input, 100_000)?;
        assert_eq!(a.output, b.output);
        println!("input {input:?} → {:?} (slice agrees)", a.output);
    }
    Ok(())
}
