//! Debugging scenario (§5): a bug is observed at a specific configuration
//! (vertex + call stack); slice to the smallest executable program that
//! reproduces the value flowing there — including the Fig. 2 effect where
//! direct recursion specializes into mutual recursion.
//!
//! Both criteria run against ONE `Slicer` session, so the SDG→PDS encoding
//! is built once for the two queries.
//!
//! `--alloc` appends an allocation report over the scale corpus' 1k tier:
//! allocation counts and bytes per pipeline stage plus the warm session's
//! scratch-pool arena high-water marks — the same accounting
//! `BENCH_scale.json` snapshots. Build with the counting allocator to get
//! non-zero numbers:
//!
//! ```text
//! cargo run -p specslice-bench --example debug_slice --features count-alloc -- --alloc
//! ```

use specslice::{Criterion, Slicer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = specslice_corpus::examples::FIG2;
    println!("=== original (direct recursion) ===\n{source}");

    let slicer = Slicer::from_source(source)?;
    let sdg = slicer.sdg();

    // Criterion: the printf in main, every calling context. Timing and
    // automaton sizes come from the pipeline's own accounting
    // (`PipelineStats`), the same numbers the bench drivers report.
    let (slice, stats) = slicer.slice_with_stats(&Criterion::printf_actuals(sdg))?;
    println!(
        "criterion 1/2 (printf actuals, all contexts): {}",
        stats.summary()
    );
    println!(
        "variants: {:?}",
        slice
            .metas()
            .iter()
            .map(|v| v.name.as_str())
            .collect::<Vec<_>>()
    );

    let regen = slicer.regenerate(&slice)?;
    println!("=== specialized (mutual recursion) ===\n{}", regen.source);

    // Also demonstrate a configuration criterion: r's entry under the
    // outermost call only — same session, no re-encoding.
    let r = sdg.proc_named("r").expect("r exists");
    let main_site = sdg
        .call_sites
        .iter()
        .find(|c| {
            sdg.proc(c.caller).name == "main"
                && matches!(c.callee, specslice_sdg::CalleeKind::User(p) if p == r.id)
        })
        .expect("main calls r");
    let (cfg_slice, cfg_stats) =
        slicer.slice_with_stats(&Criterion::configuration(r.entry, vec![main_site.id]))?;
    println!(
        "criterion 2/2 (r:entry under [C_main]): {}",
        cfg_stats.summary()
    );
    println!(
        "slicing on (r:entry, [C_main]) keeps {} variants",
        cfg_slice.variant_count()
    );

    // The same session also answers forward (post*) queries and chops, and
    // the `memo=` field of each summary keeps the two caches apart: an
    // entry memoized backward never answers a forward query. The chop's
    // constituents — the printf criterion sliced backward above and the
    // forward query run here — are both warm by the time the chop runs, so
    // its summary reports one memo hit per direction.
    let fwd_criterion = Criterion::configuration(r.entry, vec![main_site.id]);
    let (fwd, fwd_stats) = slicer.forward_slice_with_stats(&fwd_criterion)?;
    println!(
        "forward (r:entry under [C_main], post*): {}",
        fwd_stats.summary()
    );
    println!("forward slice reaches {} vertices", fwd.total_vertices());
    let (chop, chop_stats) =
        slicer.chop_with_stats(&fwd_criterion, &Criterion::printf_actuals(sdg))?;
    println!("chop (r:entry → printf actuals): {}", chop_stats.summary());
    println!(
        "chop keeps {} vertices across {} variants",
        chop.total_vertices(),
        chop.variant_count()
    );

    // Both slices interned their variant content into the session's store;
    // identical projections across criteria are stored (and counted) once.
    let st = slicer.store_stats();
    println!(
        "variant store: {} interned / {} intern calls ({} dedup hits), {} row bytes",
        st.interned, st.intern_calls, st.dedup_hits, st.row_bytes
    );

    // The per-stage byte estimates behind `Slicer::approx_bytes` — the same
    // accounting the server's LRU eviction budget charges a session with.
    println!(
        "resident estimate: {} bytes (sdg {}, store {}, mrd automata {} + {})",
        slicer.approx_bytes(),
        sdg.approx_bytes(),
        st.approx_bytes(),
        stats.approx_bytes(),
        cfg_stats.approx_bytes(),
    );

    if std::env::args().any(|a| a == "--alloc") {
        alloc_report()?;
    }
    Ok(())
}

/// The `--alloc` report: per-stage allocation counts over the scale
/// corpus' 1k tier (the workload `BENCH_scale.json` gates), measured with
/// the counting allocator when the `count-alloc` feature installed it.
fn alloc_report() -> Result<(), Box<dyn std::error::Error>> {
    use specslice::encode::MAIN_CONTROL;
    use specslice::{SlicerConfig, Solver};
    use specslice_bench::alloc_count as ac;

    println!("\n=== allocation report (scale 1k tier) ===");
    if !ac::enabled() {
        println!(
            "counting allocator not installed; rebuild with \
             `--features count-alloc` for non-zero numbers"
        );
    }
    let cfg = specslice_corpus::ScaleConfig {
        n_procs: 16,
        n_globals: 8,
        ring: 4,
        indirect_pct: 25,
        n_printfs: 24,
    };
    let source = specslice_corpus::scale_program(42, cfg);
    let stage = |name: &str, d: specslice_bench::alloc_count::AllocDelta| {
        println!(
            "  {name:<28} {:>9} allocs {:>12} bytes (peak live {} KiB)",
            d.count,
            d.bytes,
            d.peak_bytes / 1024
        );
    };

    let (slicer, d) = ac::measure(|| -> Result<Slicer, Box<dyn std::error::Error>> {
        let program = specslice_lang::frontend(&source)?;
        let lowered = specslice::indirect::lower_indirect_calls(&program)?;
        Ok(Slicer::from_program_with(
            lowered,
            SlicerConfig {
                collect_stats: false,
                memoize: false,
                num_threads: 1,
                solver: Solver::OnePass,
                ..SlicerConfig::default()
            },
        )?)
    });
    let slicer = slicer?;
    stage("session build", d);

    let sdg = slicer.sdg();
    let enc = slicer.encoding();
    let sites: Vec<Criterion> = sdg
        .printf_call_sites()
        .map(|c| Criterion::AllContexts(c.actual_ins.clone()))
        .collect();
    let criteria: Vec<Criterion> = specslice_corpus::skewed_site_sample(sites.len(), 60, 7)
        .into_iter()
        .map(|i| sites[i].clone())
        .collect();

    // One cold query decomposed stage by stage (the scratch-free public
    // APIs — an upper bound on what the warm session path pays).
    let criterion = &criteria[0];
    let (query, d) = ac::measure(|| {
        specslice::criteria::query_automaton(sdg, enc, criterion).expect("criterion")
    });
    stage("cold: query automaton", d);
    let (a1, d) = ac::measure(|| {
        specslice_pds::prestar::prestar_with_stats(&enc.pds, &query)
            .expect("well-formed query")
            .0
    });
    stage("cold: prestar saturation", d);
    let (trimmed, d) = ac::measure(|| a1.to_nfa(MAIN_CONTROL).trimmed().0);
    stage("cold: to_nfa + trim", d);
    let ((a6, mrd_stats), d) = ac::measure(|| specslice_fsa::mrd::mrd_with_stats(&trimmed));
    stage("cold: determinize + MRD", d);
    println!(
        "    (mrd sizes: input {} -> det {} -> min {} -> mrd {} states)",
        mrd_stats.input_states,
        mrd_stats.determinized_states,
        mrd_stats.minimized_states,
        mrd_stats.mrd_states
    );
    let (_, d) = ac::measure(|| specslice::readout::read_out(sdg, enc, &a6).expect("read out"));
    stage("cold: read-out", d);

    // The gated numbers: a warm sequential batch, normalized per
    // criterion (one batch already ran, so the scratch pool is warm).
    slicer.slice_batch(&criteria)?;
    let (_, d) = ac::measure(|| slicer.slice_batch(&criteria).expect("batch"));
    stage("warm batch total", d);
    println!(
        "  warm per criterion: {} allocs, {} bytes ({} criteria)",
        d.count / criteria.len() as u64,
        d.bytes / criteria.len() as u64,
        criteria.len()
    );

    let ss = slicer.scratch_stats();
    println!(
        "  scratch pool: {} pooled scratches, ~{} KiB retained, \
         arena high-water {} KiB",
        ss.pooled,
        ss.approx_bytes / 1024,
        ss.arena_high_water / 1024
    );
    Ok(())
}
