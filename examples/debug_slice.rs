//! Debugging scenario (§5): a bug is observed at a specific configuration
//! (vertex + call stack); slice to the smallest executable program that
//! reproduces the value flowing there — including the Fig. 2 effect where
//! direct recursion specializes into mutual recursion.
//!
//! Both criteria run against ONE `Slicer` session, so the SDG→PDS encoding
//! is built once for the two queries.

use specslice::{Criterion, Slicer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = specslice_corpus::examples::FIG2;
    println!("=== original (direct recursion) ===\n{source}");

    let slicer = Slicer::from_source(source)?;
    let sdg = slicer.sdg();

    // Criterion: the printf in main, every calling context. Timing and
    // automaton sizes come from the pipeline's own accounting
    // (`PipelineStats`), the same numbers the bench drivers report.
    let (slice, stats) = slicer.slice_with_stats(&Criterion::printf_actuals(sdg))?;
    println!(
        "criterion 1/2 (printf actuals, all contexts): {}",
        stats.summary()
    );
    println!(
        "variants: {:?}",
        slice
            .metas()
            .iter()
            .map(|v| v.name.as_str())
            .collect::<Vec<_>>()
    );

    let regen = slicer.regenerate(&slice)?;
    println!("=== specialized (mutual recursion) ===\n{}", regen.source);

    // Also demonstrate a configuration criterion: r's entry under the
    // outermost call only — same session, no re-encoding.
    let r = sdg.proc_named("r").expect("r exists");
    let main_site = sdg
        .call_sites
        .iter()
        .find(|c| {
            sdg.proc(c.caller).name == "main"
                && matches!(c.callee, specslice_sdg::CalleeKind::User(p) if p == r.id)
        })
        .expect("main calls r");
    let (cfg_slice, cfg_stats) =
        slicer.slice_with_stats(&Criterion::configuration(r.entry, vec![main_site.id]))?;
    println!(
        "criterion 2/2 (r:entry under [C_main]): {}",
        cfg_stats.summary()
    );
    println!(
        "slicing on (r:entry, [C_main]) keeps {} variants",
        cfg_slice.variant_count()
    );

    // The same session also answers forward (post*) queries and chops, and
    // the `memo=` field of each summary keeps the two caches apart: an
    // entry memoized backward never answers a forward query. The chop's
    // constituents — the printf criterion sliced backward above and the
    // forward query run here — are both warm by the time the chop runs, so
    // its summary reports one memo hit per direction.
    let fwd_criterion = Criterion::configuration(r.entry, vec![main_site.id]);
    let (fwd, fwd_stats) = slicer.forward_slice_with_stats(&fwd_criterion)?;
    println!(
        "forward (r:entry under [C_main], post*): {}",
        fwd_stats.summary()
    );
    println!("forward slice reaches {} vertices", fwd.total_vertices());
    let (chop, chop_stats) =
        slicer.chop_with_stats(&fwd_criterion, &Criterion::printf_actuals(sdg))?;
    println!("chop (r:entry → printf actuals): {}", chop_stats.summary());
    println!(
        "chop keeps {} vertices across {} variants",
        chop.total_vertices(),
        chop.variant_count()
    );

    // Both slices interned their variant content into the session's store;
    // identical projections across criteria are stored (and counted) once.
    let st = slicer.store_stats();
    println!(
        "variant store: {} interned / {} intern calls ({} dedup hits), {} row bytes",
        st.interned, st.intern_calls, st.dedup_hits, st.row_bytes
    );

    // The per-stage byte estimates behind `Slicer::approx_bytes` — the same
    // accounting the server's LRU eviction budget charges a session with.
    println!(
        "resident estimate: {} bytes (sdg {}, store {}, mrd automata {} + {})",
        slicer.approx_bytes(),
        sdg.approx_bytes(),
        st.approx_bytes(),
        stats.approx_bytes(),
        cfg_stats.approx_bytes(),
    );
    Ok(())
}
